//! Run metrics: everything the paper's evaluation chapter reports.
//!
//! Chapter 6 measures four things — messages per critical-section entry
//! (6.1/6.2), synchronization delay (6.3), and storage overhead (6.4) —
//! and this module collects all of them plus waiting times and per-kind
//! message counts for the extended experiments.

use dmx_topology::NodeId;

use crate::time::Time;

/// One completed critical-section visit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantRecord {
    /// The node that entered.
    pub node: NodeId,
    /// When the node asked.
    pub requested_at: Time,
    /// When it entered the critical section.
    pub granted_at: Time,
    /// When it left, or `None` while still inside at end of run.
    pub released_at: Option<Time>,
    /// Messages delivered system-wide between request and grant.
    pub messages_during_wait: u64,
}

impl GrantRecord {
    /// Waiting time from request to grant, in ticks.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_simnet::metrics::GrantRecord;
    /// use dmx_simnet::Time;
    /// use dmx_topology::NodeId;
    ///
    /// let g = GrantRecord {
    ///     node: NodeId(1),
    ///     requested_at: Time(5),
    ///     granted_at: Time(9),
    ///     released_at: None,
    ///     messages_during_wait: 3,
    /// };
    /// assert_eq!(g.wait(), Time(4));
    /// ```
    pub fn wait(&self) -> Time {
        self.granted_at.saturating_since(self.requested_at)
    }
}

/// One measured synchronization-delay episode: a node left the critical
/// section while another request was pending, and the next entry happened
/// `elapsed` ticks (and `messages` total system messages) later.
///
/// The paper (6.3): "Synchronization delay is the maximum number of
/// sequential messages required after a node I leaves its critical section
/// before a node J can enter its critical section." That is a *critical
/// path* length: under the default one-tick-per-hop latency model,
/// `elapsed.ticks()` equals the number of sequential messages, which is
/// how the Table 6.3 experiment measures it. `messages` counts *all*
/// deliveries system-wide inside the window — an upper bound on the chain
/// that also exposes background traffic. For the DAG algorithm the
/// sequential count is one PRIVILEGE message, irrespective of topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncDelay {
    /// The node that exited.
    pub from: NodeId,
    /// The node that entered next.
    pub to: NodeId,
    /// Messages delivered between the exit and the next entry.
    pub messages: u64,
    /// Ticks between the exit and the next entry.
    pub elapsed: Time,
}

/// An allocation-free latency histogram with fixed log₂-spaced buckets.
///
/// Bucket 0 holds exact zeros; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i - 1]`. With 65 buckets the full `u64` range is
/// covered, recording is a handful of integer ops (no branches on
/// bucket boundaries, no allocation — this type sits on the multiplexed
/// hot path next to [`KeyStats`]), and [`merge`](Histogram::merge) is an
/// element-wise sum, so merging per-shard histograms equals having
/// recorded the concatenated stream — the property the parallel
/// runtime's shard rollup relies on.
///
/// Quantiles ([`quantile`](Histogram::quantile)) are estimated by linear
/// interpolation inside the target bucket and clamped to the observed
/// maximum; the estimate is deterministic integer math, so two runs (or
/// two shard decompositions) that recorded the same multiset report
/// identical percentiles.
///
/// # Examples
///
/// ```
/// use dmx_simnet::metrics::Histogram;
///
/// let mut h = Histogram::default();
/// for w in [0, 1, 2, 3, 100] {
///     h.record(w);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.max(), 100);
/// assert_eq!(h.quantile(0.0), Some(0));
/// assert_eq!(h.quantile(1.0), Some(100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; Histogram::BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; Histogram::BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket count: one for zero plus one per bit of `u64`.
    pub const BUCKETS: usize = 65;

    #[inline]
    fn bucket_index(value: u64) -> usize {
        // Bit length: 0 → 0, 1 → 1, [2,3] → 2, [4,7] → 3, …
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive `[lo, hi]` value range of bucket `i`.
    fn bounds(i: usize) -> (u64, u64) {
        match i {
            0 => (0, 0),
            64 => (1 << 63, u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest recorded observation (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all recorded observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observation, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Estimated value at quantile `q ∈ [0, 1]`, or `None` when empty.
    ///
    /// The rank-`⌈q·count⌉` observation's bucket is located by a
    /// cumulative scan, then the value is linearly interpolated across
    /// the bucket's `[lo, hi]` range and clamped to the observed max —
    /// exact for bucket 0, within one bucket width otherwise.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = Self::bounds(i);
                let within = rank - seen; // 1-based rank inside this bucket
                let span = (hi - lo) as u128;
                let est = lo + (span * within as u128).div_ceil(c as u128) as u64;
                return Some(est.min(self.max));
            }
            seen += c;
        }
        unreachable!("rank {rank} beyond recorded count {}", self.count)
    }

    /// The median estimate (0 when empty).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50).unwrap_or(0)
    }

    /// The 99th-percentile estimate (0 when empty).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99).unwrap_or(0)
    }

    /// The 99.9th-percentile estimate (0 when empty).
    pub fn p999(&self) -> u64 {
        self.quantile(0.999).unwrap_or(0)
    }

    /// Folds `other` into `self` bucket by bucket. Merging per-shard
    /// histograms equals recording the concatenated stream into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Iterates `(lo, hi, count)` for every non-empty bucket, in value
    /// order — the raw shape, for tables and debugging.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bounds(i);
                (lo, hi, c)
            })
    }
}

/// Per-message-kind delivery counters.
///
/// Keys are the `&'static str` labels
/// [`MessageMeta::kind`](crate::MessageMeta::kind) returns, interned by
/// the compiler, so counting a delivery allocates nothing. A protocol
/// has a handful of message kinds at most, which makes a linear scan
/// over a flat vector faster than hashing a `String` key ever was — the
/// previous `BTreeMap<String, u64>` representation allocated one
/// `String` per delivered message on the engine's hottest path.
///
/// Entries appear in first-seen order; two runs with the same seed
/// produce identical `KindCounts` (which is what the determinism golden
/// test asserts). Equality is order-sensitive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KindCounts {
    counts: Vec<(&'static str, u64)>,
}

impl KindCounts {
    /// Adds one delivery of `kind`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::KindCounts;
    /// let mut k = KindCounts::default();
    /// k.increment("REQUEST");
    /// k.increment("REQUEST");
    /// assert_eq!(k.get("REQUEST"), 2);
    /// ```
    pub fn increment(&mut self, kind: &'static str) {
        for (key, count) in &mut self.counts {
            // Interned literals usually share an address; fall back to a
            // content compare for equal labels from different crates.
            if std::ptr::eq(*key, kind) || *key == kind {
                *count += 1;
                return;
            }
        }
        self.counts.push((kind, 1));
    }

    /// Deliveries of `kind` (0 if never seen).
    pub fn get(&self, kind: &str) -> u64 {
        self.counts
            .iter()
            .find(|(key, _)| *key == kind)
            .map(|&(_, count)| count)
            .unwrap_or(0)
    }

    /// Iterates `(kind, count)` pairs in first-seen order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().copied()
    }

    /// Number of distinct kinds seen.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// `true` when no delivery was counted.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

/// Aggregated counters for one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Total protocol messages delivered.
    pub messages_total: u64,
    /// Total payload bytes (per [`MessageMeta::wire_size`](crate::MessageMeta::wire_size)).
    pub bytes_total: u64,
    /// Largest single message payload seen, in bytes — the Chapter 6.4
    /// comparison point (the DAG algorithm's PRIVILEGE carries 0, while
    /// Suzuki–Kasami's token hauls `O(N)`).
    pub max_message_bytes: u64,
    /// Largest per-node control-state footprint observed, in words
    /// (only collected when
    /// [`EngineConfig::track_storage`](crate::EngineConfig) is set).
    pub max_storage_words: usize,
    /// Messages lost by the fault model
    /// ([`EngineConfig::drop_rate`](crate::EngineConfig) > 0).
    pub messages_dropped: u64,
    /// Deliveries per message kind.
    pub by_kind: KindCounts,
    /// Number of completed critical-section entries.
    pub cs_entries: u64,
    /// Number of requests issued.
    pub requests: u64,
    /// Number of protocol timer wake-ups processed
    /// (see `Ctx::wake_at`). Zero for the single-lock protocols, which
    /// never schedule timers.
    pub wakes: u64,
    /// Timing-wheel level-1 buckets rotated down into level-0 slots
    /// (see [`crate::sched`]). Always zero under the heap backend —
    /// exclude these two scheduler counters when comparing metrics
    /// *across* backends; everything else is backend-invariant.
    pub sched_bucket_rotations: u64,
    /// Events promoted out of the timing wheel's far-future overflow
    /// heap (see [`crate::sched`]). Always zero under the heap backend.
    pub sched_overflow_promotions: u64,
    /// Every grant, in grant order.
    pub grants: Vec<GrantRecord>,
    /// Every synchronization-delay episode observed.
    pub sync_delays: Vec<SyncDelay>,
}

impl Metrics {
    /// Mean messages per critical-section entry — the paper's headline
    /// metric (Chapter 6.1/6.2). Returns 0 when no entry completed.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_simnet::metrics::Metrics;
    /// let mut m = Metrics::default();
    /// m.messages_total = 9;
    /// m.cs_entries = 3;
    /// assert_eq!(m.messages_per_entry(), 3.0);
    /// ```
    pub fn messages_per_entry(&self) -> f64 {
        if self.cs_entries == 0 {
            0.0
        } else {
            self.messages_total as f64 / self.cs_entries as f64
        }
    }

    /// Largest observed synchronization delay, in messages (the paper
    /// quotes the worst case). `None` if no hand-off was observed.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::Metrics;
    /// assert_eq!(Metrics::default().max_sync_delay_messages(), None);
    /// ```
    pub fn max_sync_delay_messages(&self) -> Option<u64> {
        self.sync_delays.iter().map(|s| s.messages).max()
    }

    /// Mean synchronization delay in messages over all observed hand-offs.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::Metrics;
    /// assert_eq!(Metrics::default().mean_sync_delay_messages(), None);
    /// ```
    pub fn mean_sync_delay_messages(&self) -> Option<f64> {
        if self.sync_delays.is_empty() {
            return None;
        }
        let total: u64 = self.sync_delays.iter().map(|s| s.messages).sum();
        Some(total as f64 / self.sync_delays.len() as f64)
    }

    /// Mean waiting time (request to grant) in ticks.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::Metrics;
    /// assert_eq!(Metrics::default().mean_wait_ticks(), None);
    /// ```
    pub fn mean_wait_ticks(&self) -> Option<f64> {
        if self.grants.is_empty() {
            return None;
        }
        let total: u64 = self.grants.iter().map(|g| g.wait().ticks()).sum();
        Some(total as f64 / self.grants.len() as f64)
    }

    /// The request→grant wait distribution over every grant, as a
    /// log₂-bucket [`Histogram`] — p50/p99/p999 for single-lock runs,
    /// where waits are kept as raw [`GrantRecord`]s rather than binned
    /// on the hot path.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::Metrics;
    /// assert!(Metrics::default().wait_histogram().is_empty());
    /// ```
    pub fn wait_histogram(&self) -> Histogram {
        let mut h = Histogram::default();
        for g in &self.grants {
            h.record(g.wait().ticks());
        }
        h
    }

    /// The order in which nodes were granted the critical section.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::Metrics;
    /// assert!(Metrics::default().grant_order().is_empty());
    /// ```
    pub fn grant_order(&self) -> Vec<NodeId> {
        self.grants.iter().map(|g| g.node).collect()
    }

    /// Deliveries of one message kind (0 if never seen).
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::metrics::Metrics;
    /// assert_eq!(Metrics::default().kind_count("REQUEST"), 0);
    /// ```
    pub fn kind_count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind)
    }
}

/// Per-key counters for one lock of a multiplexed (multi-lock) run.
///
/// The engine itself is key-agnostic — it counts envelopes; the
/// multi-lock subsystem (`dmx-lockspace`) feeds its per-key protocol
/// activity through [`KeyedMetrics`], which aggregates one `KeyStats`
/// per lock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyStats {
    /// Requests issued for this key.
    pub requests: u64,
    /// Grants (critical-section entries) completed for this key.
    pub grants: u64,
    /// Keyed `REQUEST` messages delivered for this key (counting each
    /// batched message individually, unlike the engine's envelope count).
    pub request_messages: u64,
    /// Keyed `PRIVILEGE` messages delivered for this key.
    pub privilege_messages: u64,
    /// Keyed messages of any other kind delivered for this key.
    pub other_messages: u64,
    /// Sum of request→grant waits for this key, in ticks.
    pub wait_ticks: u64,
}

impl KeyStats {
    /// All keyed messages delivered for this key.
    pub fn messages(&self) -> u64 {
        self.request_messages + self.privilege_messages + self.other_messages
    }

    /// `true` when the key saw any activity at all.
    pub fn touched(&self) -> bool {
        self.requests > 0 || self.grants > 0 || self.messages() > 0
    }

    /// Adds `other`'s counters into `self`. Every field is a plain sum,
    /// so merging per-shard stats is exactly equivalent to having
    /// counted the concatenated event stream with one instance — the
    /// property the parallel lock-space runtime relies on to roll up
    /// shard-local metrics.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_simnet::metrics::KeyStats;
    ///
    /// let mut a = KeyStats { requests: 2, wait_ticks: 7, ..KeyStats::default() };
    /// let b = KeyStats { requests: 1, wait_ticks: 3, ..KeyStats::default() };
    /// a.merge(&b);
    /// assert_eq!(a.requests, 3);
    /// assert_eq!(a.wait_ticks, 10);
    /// ```
    pub fn merge(&mut self, other: &KeyStats) {
        self.requests += other.requests;
        self.grants += other.grants;
        self.request_messages += other.request_messages;
        self.privilege_messages += other.privilege_messages;
        self.other_messages += other.other_messages;
        self.wait_ticks += other.wait_ticks;
    }
}

/// Whole-run summary computed by [`KeyedMetrics::rollup`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KeyedRollup {
    /// Keys with any recorded activity.
    pub keys_touched: usize,
    /// Total requests across all keys.
    pub requests: u64,
    /// Total grants across all keys.
    pub grants: u64,
    /// Total keyed messages across all keys (pre-batching count).
    pub messages: u64,
    /// The key with the most grants, if any key was granted.
    pub hottest_key: Option<usize>,
    /// Grants of the hottest key.
    pub hottest_grants: u64,
    /// Mean keyed messages per grant (0 when no grants).
    pub messages_per_grant: f64,
    /// Mean request→grant wait in ticks (0 when no grants).
    pub mean_wait_ticks: f64,
    /// Median request→grant wait in ticks (0 when no grants).
    pub p50_wait_ticks: u64,
    /// 99th-percentile request→grant wait in ticks (0 when no grants).
    pub p99_wait_ticks: u64,
    /// 99.9th-percentile request→grant wait in ticks (0 when no grants).
    pub p999_wait_ticks: u64,
    /// Largest request→grant wait in ticks (0 when no grants).
    pub max_wait_ticks: u64,
}

/// Per-key metric rollups for a multi-lock run: a dense vector of
/// [`KeyStats`] indexed by key.
///
/// Sized once up front (the key-space size is known when a lock space is
/// built), so steady-state updates never allocate — this type is on the
/// multiplexed hot path.
///
/// # Examples
///
/// ```
/// use dmx_simnet::metrics::KeyedMetrics;
///
/// let mut m = KeyedMetrics::with_keys(8);
/// m.on_request(3);
/// m.on_grant(3, 5);
/// assert_eq!(m.stats(3).grants, 1);
/// assert_eq!(m.rollup().keys_touched, 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KeyedMetrics {
    per_key: Vec<KeyStats>,
    /// Global request→grant wait distribution, always recorded — one
    /// fixed-size [`Histogram`], so it costs a few integer ops per grant
    /// and zero allocations regardless of key-space size.
    wait_hist: Histogram,
    /// Per-key wait distributions, opt-in
    /// ([`with_per_key_histograms`](KeyedMetrics::with_per_key_histograms)):
    /// ~0.5 KiB per key, so million-key parallel sweeps leave it off
    /// while interactive lock spaces keep it on. Empty when disabled.
    per_key_hist: Vec<Histogram>,
}

impl KeyedMetrics {
    /// A rollup for `keys` locks, all counters zero.
    pub fn with_keys(keys: usize) -> Self {
        KeyedMetrics {
            per_key: vec![KeyStats::default(); keys],
            wait_hist: Histogram::default(),
            per_key_hist: Vec::new(),
        }
    }

    /// Enables per-key wait histograms, pre-sized up front so recording
    /// stays allocation-free.
    pub fn with_per_key_histograms(mut self) -> Self {
        self.per_key_hist = vec![Histogram::default(); self.per_key.len()];
        self
    }

    /// Number of keys tracked.
    pub fn len(&self) -> usize {
        self.per_key.len()
    }

    /// `true` when tracking no keys.
    pub fn is_empty(&self) -> bool {
        self.per_key.is_empty()
    }

    /// Counters for one key.
    ///
    /// # Panics
    ///
    /// Panics if `key` is out of range.
    pub fn stats(&self, key: usize) -> &KeyStats {
        &self.per_key[key]
    }

    /// Records a request for `key`.
    pub fn on_request(&mut self, key: usize) {
        self.per_key[key].requests += 1;
    }

    /// Records a grant for `key` after waiting `wait_ticks`.
    pub fn on_grant(&mut self, key: usize, wait_ticks: u64) {
        let s = &mut self.per_key[key];
        s.grants += 1;
        s.wait_ticks += wait_ticks;
        self.wait_hist.record(wait_ticks);
        if let Some(h) = self.per_key_hist.get_mut(key) {
            h.record(wait_ticks);
        }
    }

    /// The global request→grant wait distribution.
    pub fn wait_histogram(&self) -> &Histogram {
        &self.wait_hist
    }

    /// The wait distribution for one key, if per-key histograms are on.
    pub fn key_wait_histogram(&self, key: usize) -> Option<&Histogram> {
        self.per_key_hist.get(key)
    }

    /// Records the delivery of one keyed message of `kind` for `key`.
    /// `kind` is the interned label the message's
    /// [`MessageMeta::kind`](crate::MessageMeta::kind) returns.
    pub fn on_message(&mut self, key: usize, kind: &'static str) {
        let s = &mut self.per_key[key];
        // Pointer compare first: interned literals share an address.
        if std::ptr::eq(kind, "REQUEST") || kind == "REQUEST" {
            s.request_messages += 1;
        } else if std::ptr::eq(kind, "PRIVILEGE") || kind == "PRIVILEGE" {
            s.privilege_messages += 1;
        } else {
            s.other_messages += 1;
        }
    }

    /// Iterates `(key, stats)` for every key that saw activity.
    pub fn iter_touched(&self) -> impl Iterator<Item = (usize, &KeyStats)> + '_ {
        self.per_key.iter().enumerate().filter(|(_, s)| s.touched())
    }

    /// Folds `other`'s per-key counters into `self`, key by key. Since
    /// every [`KeyStats`] field is a plain sum, the merged rollup equals
    /// the rollup a single instance would have produced over the
    /// concatenated event stream — which is how the parallel lock-space
    /// runtime combines shard-local metrics at its barriers.
    ///
    /// # Panics
    ///
    /// Panics if the two rollups track different key-space sizes.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_simnet::metrics::KeyedMetrics;
    ///
    /// let mut a = KeyedMetrics::with_keys(4);
    /// a.on_request(1);
    /// let mut b = KeyedMetrics::with_keys(4);
    /// b.on_request(1);
    /// b.on_grant(1, 5);
    /// a.merge(&b);
    /// assert_eq!(a.stats(1).requests, 2);
    /// assert_eq!(a.stats(1).grants, 1);
    /// ```
    pub fn merge(&mut self, other: &KeyedMetrics) {
        assert_eq!(
            self.per_key.len(),
            other.per_key.len(),
            "merging rollups over different key spaces"
        );
        assert_eq!(
            self.per_key_hist.len(),
            other.per_key_hist.len(),
            "merging rollups over different key spaces (per-key histograms enabled on one side only)"
        );
        for (mine, theirs) in self.per_key.iter_mut().zip(&other.per_key) {
            mine.merge(theirs);
        }
        self.wait_hist.merge(&other.wait_hist);
        for (mine, theirs) in self.per_key_hist.iter_mut().zip(&other.per_key_hist) {
            mine.merge(theirs);
        }
    }

    /// Aggregates every key into a [`KeyedRollup`].
    pub fn rollup(&self) -> KeyedRollup {
        let mut r = KeyedRollup::default();
        for (key, s) in self.iter_touched() {
            r.keys_touched += 1;
            r.requests += s.requests;
            r.grants += s.grants;
            r.messages += s.messages();
            if s.grants > r.hottest_grants {
                r.hottest_grants = s.grants;
                r.hottest_key = Some(key);
            }
        }
        if r.grants > 0 {
            r.messages_per_grant = r.messages as f64 / r.grants as f64;
            let wait: u64 = self.per_key.iter().map(|s| s.wait_ticks).sum();
            r.mean_wait_ticks = wait as f64 / r.grants as f64;
            r.p50_wait_ticks = self.wait_hist.p50();
            r.p99_wait_ticks = self.wait_hist.p99();
            r.p999_wait_ticks = self.wait_hist.p999();
            r.max_wait_ticks = self.wait_hist.max();
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grant(node: u32, req: u64, got: u64) -> GrantRecord {
        GrantRecord {
            node: NodeId(node),
            requested_at: Time(req),
            granted_at: Time(got),
            released_at: None,
            messages_during_wait: 0,
        }
    }

    #[test]
    fn messages_per_entry_handles_zero_entries() {
        let m = Metrics::default();
        assert_eq!(m.messages_per_entry(), 0.0);
    }

    #[test]
    fn aggregates() {
        let mut m = Metrics::default();
        m.grants.push(grant(1, 0, 4));
        m.grants.push(grant(2, 2, 4));
        m.sync_delays.push(SyncDelay {
            from: NodeId(1),
            to: NodeId(2),
            messages: 1,
            elapsed: Time(1),
        });
        m.sync_delays.push(SyncDelay {
            from: NodeId(2),
            to: NodeId(3),
            messages: 3,
            elapsed: Time(5),
        });
        assert_eq!(m.max_sync_delay_messages(), Some(3));
        assert_eq!(m.mean_sync_delay_messages(), Some(2.0));
        assert_eq!(m.mean_wait_ticks(), Some(3.0));
        assert_eq!(m.grant_order(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn kind_counts() {
        let mut m = Metrics::default();
        for _ in 0..5 {
            m.by_kind.increment("REQUEST");
        }
        assert_eq!(m.kind_count("REQUEST"), 5);
        assert_eq!(m.kind_count("PRIVILEGE"), 0);
    }

    #[test]
    fn keyed_metrics_roll_up() {
        let mut m = KeyedMetrics::with_keys(4);
        m.on_request(1);
        m.on_message(1, "REQUEST");
        m.on_message(1, "PRIVILEGE");
        m.on_grant(1, 4);
        m.on_request(3);
        m.on_grant(3, 0);
        m.on_grant(3, 2);
        let r = m.rollup();
        assert_eq!(r.keys_touched, 2);
        assert_eq!(r.requests, 2);
        assert_eq!(r.grants, 3);
        assert_eq!(r.messages, 2);
        assert_eq!(r.hottest_key, Some(3));
        assert_eq!(r.hottest_grants, 2);
        assert_eq!(r.mean_wait_ticks, 2.0);
        assert_eq!(m.stats(1).request_messages, 1);
        assert_eq!(m.stats(1).privilege_messages, 1);
        assert!(!m.stats(0).touched());
        assert_eq!(m.iter_touched().count(), 2);
    }

    /// One recorded keyed-metrics event, replayable against any
    /// instance — the merge tests drive the same stream through one
    /// instance and through two merged halves.
    #[derive(Clone, Copy)]
    enum KeyedEvent {
        Request(usize),
        Grant(usize, u64),
        Message(usize, &'static str),
    }

    fn replay(m: &mut KeyedMetrics, events: &[KeyedEvent]) {
        for &e in events {
            match e {
                KeyedEvent::Request(k) => m.on_request(k),
                KeyedEvent::Grant(k, w) => m.on_grant(k, w),
                KeyedEvent::Message(k, kind) => m.on_message(k, kind),
            }
        }
    }

    #[test]
    fn merged_keyed_metrics_equal_one_instance_over_the_concatenated_stream() {
        use KeyedEvent::*;
        let first = [
            Request(0),
            Message(0, "REQUEST"),
            Message(0, "PRIVILEGE"),
            Grant(0, 4),
            Request(2),
        ];
        let second = [
            Grant(2, 9),
            Request(0),
            Grant(0, 0),
            Message(3, "INITIALIZE"),
            Request(3),
        ];

        // Reference: one instance sees the whole concatenated stream.
        let mut whole = KeyedMetrics::with_keys(4);
        replay(&mut whole, &first);
        replay(&mut whole, &second);

        // Shards: one instance per half, merged afterwards.
        let mut a = KeyedMetrics::with_keys(4);
        replay(&mut a, &first);
        let mut b = KeyedMetrics::with_keys(4);
        replay(&mut b, &second);
        a.merge(&b);

        assert_eq!(a, whole);
        assert_eq!(a.rollup(), whole.rollup());
    }

    #[test]
    #[should_panic(expected = "different key spaces")]
    fn merging_mismatched_key_spaces_is_rejected() {
        let mut a = KeyedMetrics::with_keys(4);
        a.merge(&KeyedMetrics::with_keys(5));
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64, u64)> = h.iter_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),              // the exact zero
                (1, 1, 1),              // 1
                (2, 3, 2),              // 2, 3
                (4, 7, 2),              // 4, 7
                (8, 15, 1),             // 8
                (1 << 63, u64::MAX, 1), // u64::MAX
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.sum(), u64::MAX); // saturated
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_clamped() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(0.5), None);
        for w in 0..1000u64 {
            h.record(w);
        }
        let (p50, p99, p999) = (h.p50(), h.p99(), h.p999());
        assert!(p50 <= p99 && p99 <= p999, "{p50} {p99} {p999}");
        assert!(p999 <= h.max());
        // p50 of 0..1000 lands in the [256, 511] bucket; the linear
        // interpolation keeps the estimate within that bucket.
        assert!((256..=511).contains(&p50), "{p50}");
        assert!(p99 >= 512, "{p99}");
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.mean(), Some(499.5));
    }

    #[test]
    fn histogram_merge_equals_whole_stream() {
        let (first, second): (Vec<u64>, Vec<u64>) =
            ((0..100u64).collect(), (50..300).step_by(7).collect());
        let mut whole = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for &v in &first {
            whole.record(v);
            a.record(v);
        }
        for &v in &second {
            whole.record(v);
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.quantile(0.99), whole.quantile(0.99));
    }

    #[test]
    fn keyed_metrics_record_wait_histograms() {
        let mut m = KeyedMetrics::with_keys(4).with_per_key_histograms();
        m.on_grant(1, 4);
        m.on_grant(1, 100);
        m.on_grant(3, 0);
        assert_eq!(m.wait_histogram().count(), 3);
        assert_eq!(m.wait_histogram().max(), 100);
        assert_eq!(m.key_wait_histogram(1).unwrap().count(), 2);
        assert_eq!(m.key_wait_histogram(3).unwrap().max(), 0);
        let r = m.rollup();
        assert!(r.p50_wait_ticks <= r.p99_wait_ticks);
        assert_eq!(r.max_wait_ticks, 100);
        // Without the opt-in, per-key histograms are absent but the
        // global one still records.
        let mut plain = KeyedMetrics::with_keys(4);
        plain.on_grant(1, 9);
        assert!(plain.key_wait_histogram(1).is_none());
        assert_eq!(plain.wait_histogram().count(), 1);
    }

    #[test]
    #[should_panic(expected = "per-key histograms enabled on one side only")]
    fn merging_mismatched_histogram_modes_is_rejected() {
        let mut a = KeyedMetrics::with_keys(4).with_per_key_histograms();
        a.merge(&KeyedMetrics::with_keys(4));
    }

    #[test]
    fn keyed_metrics_classify_other_kinds() {
        let mut m = KeyedMetrics::with_keys(1);
        m.on_message(0, "INITIALIZE");
        assert_eq!(m.stats(0).other_messages, 1);
        assert_eq!(m.stats(0).messages(), 1);
    }

    #[test]
    fn kind_counts_match_content_not_just_pointer() {
        let mut k = KindCounts::default();
        k.increment("REQUEST");
        // A label with equal content but (potentially) another address.
        let other: &'static str = Box::leak(String::from("REQUEST").into_boxed_str());
        k.increment(other);
        assert_eq!(k.get("REQUEST"), 2);
        assert_eq!(k.len(), 1);
        assert!(!k.is_empty());
        assert_eq!(k.iter().collect::<Vec<_>>(), vec![("REQUEST", 2)]);
    }
}
