use std::fmt::Debug;

use dmx_topology::NodeId;

use crate::time::Time;

/// Metadata every protocol message must expose so the engine can account
/// for it in the metrics the paper reports.
///
/// `kind` feeds the per-message-type counters (the paper counts REQUEST,
/// PRIVILEGE, REPLY, … separately in Chapter 2); `wire_size` feeds the
/// storage-overhead comparison of Chapter 6.4, which contrasts the DAG
/// algorithm's two-integer REQUEST and empty PRIVILEGE against token queues
/// and `N`-entry arrays carried by other algorithms.
///
/// # Examples
///
/// ```
/// use dmx_simnet::MessageMeta;
///
/// #[derive(Clone, Debug)]
/// enum Msg { Request { origin: u32 }, Privilege }
///
/// impl MessageMeta for Msg {
///     fn kind(&self) -> &'static str {
///         match self { Msg::Request { .. } => "REQUEST", Msg::Privilege => "PRIVILEGE" }
///     }
///     fn wire_size(&self) -> usize {
///         match self { Msg::Request { .. } => 4, Msg::Privilege => 0 }
///     }
/// }
///
/// assert_eq!(Msg::Privilege.wire_size(), 0);
/// ```
pub trait MessageMeta {
    /// Short, stable label for this message variant (e.g. `"REQUEST"`).
    fn kind(&self) -> &'static str;

    /// Payload size in bytes, *excluding* addressing overhead common to all
    /// algorithms. Used for the storage/overhead table.
    fn wire_size(&self) -> usize;
}

impl MessageMeta for () {
    fn kind(&self) -> &'static str {
        "UNIT"
    }
    fn wire_size(&self) -> usize {
        0
    }
}

/// A mutual exclusion protocol instance for a single node.
///
/// One value of the implementing type exists per node; the engine owns all
/// of them and invokes the callbacks below. All nine algorithms in this
/// workspace (the paper's DAG algorithm and the eight Chapter 2 baselines)
/// implement this trait, which is what lets a single harness regenerate
/// every comparison table.
///
/// The callbacks correspond to the paper's two procedures: `on_request_cs`
/// plus `on_exit_cs` are procedure `P1` split at the critical section, and
/// `on_message` is procedure `P2` (extended to token receipt).
///
/// # Examples
///
/// See the [crate-level example](crate) for a minimal implementation.
pub trait Protocol {
    /// Wire message type exchanged between nodes.
    type Message: Clone + Debug + MessageMeta;

    /// Invoked once before any other callback; a place to send setup
    /// messages (e.g. the paper's Figure 5 `INITIALIZE` flood). Default:
    /// nothing.
    fn on_init(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        let _ = ctx;
    }

    /// The local user asks to enter the critical section. The engine
    /// guarantees the node is not already requesting or in the critical
    /// section ("each node can have at most one outstanding request",
    /// Chapter 2). Call [`Ctx::enter_cs`] if entry is immediate.
    fn on_request_cs(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// A message from `from` arrives. Call [`Ctx::enter_cs`] if this
    /// message grants a pending local request.
    fn on_message(&mut self, from: NodeId, msg: Self::Message, ctx: &mut Ctx<'_, Self::Message>);

    /// The local user leaves the critical section; hand the privilege on if
    /// someone is waiting.
    fn on_exit_cs(&mut self, ctx: &mut Ctx<'_, Self::Message>);

    /// A timer set with [`Ctx::wake_at`] (or [`Ctx::wake_in`]) fired.
    ///
    /// This is the engine's generic timer facility: protocols that manage
    /// their own request arrivals or hold durations — the multi-lock
    /// `dmx-lockspace` subsystem is the first — schedule wake-ups instead
    /// of relying on the engine's single-lock request/exit machinery.
    /// Default: nothing (none of the single-lock protocols use timers).
    fn on_wake(&mut self, ctx: &mut Ctx<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Number of *words* (integers/booleans/references) of mutual exclusion
    /// control state this node currently holds, counting queue and array
    /// entries. Feeds the Chapter 6.4 storage-overhead table. Default 0
    /// for protocols that do not participate in that table.
    fn storage_words(&self) -> usize {
        0
    }
}

/// Per-callback handle protocols use to act on the outside world:
/// sending messages and signalling critical-section entry.
///
/// A fresh `Ctx` is passed to each callback; sends are buffered and the
/// engine stamps them with link latency after the callback returns.
#[derive(Debug)]
pub struct Ctx<'a, M> {
    me: NodeId,
    now: Time,
    n: usize,
    outbox: &'a mut Vec<(NodeId, M)>,
    wakes: &'a mut Vec<Time>,
    enter: &'a mut bool,
}

impl<'a, M> Ctx<'a, M> {
    pub(crate) fn new(
        me: NodeId,
        now: Time,
        n: usize,
        outbox: &'a mut Vec<(NodeId, M)>,
        wakes: &'a mut Vec<Time>,
        enter: &'a mut bool,
    ) -> Self {
        Ctx {
            me,
            now,
            n,
            outbox,
            wakes,
            enter,
        }
    }

    /// The node this callback runs on.
    #[inline]
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total number of nodes in the system; broadcast-based baselines
    /// (Lamport, Ricart–Agrawala, Suzuki–Kasami) need it.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Queues `msg` for delivery to `to` over the reliable FIFO link.
    ///
    /// # Panics
    ///
    /// Panics if `to` is the sending node itself or out of range — a
    /// protocol bug, not a runtime condition.
    pub fn send(&mut self, to: NodeId, msg: M) {
        assert_ne!(
            to, self.me,
            "protocol bug: {} sent a message to itself",
            self.me
        );
        assert!(
            to.index() < self.n,
            "protocol bug: {} sent to out-of-range node {to}",
            self.me
        );
        self.outbox.push((to, msg));
    }

    /// Schedules a [`Protocol::on_wake`] callback on this node at absolute
    /// time `at`. Multiple wake-ups may be pending at once; they fire in
    /// time order (ties in schedule order). Like sends, wake requests are
    /// buffered and turned into events after the callback returns.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn wake_at(&mut self, at: Time) {
        assert!(
            at >= self.now,
            "protocol bug: {} scheduled a wake in the past ({at} < {})",
            self.me,
            self.now
        );
        self.wakes.push(at);
    }

    /// Schedules a [`Protocol::on_wake`] callback `delay` ticks from now.
    ///
    /// # Panics
    ///
    /// Panics if `now + delay` overflows into the past (the [`Ctx::wake_at`]
    /// validation applies).
    pub fn wake_in(&mut self, delay: Time) {
        self.wake_at(self.now + delay);
    }

    /// Signals that the pending local request is granted and the node now
    /// enters its critical section. The engine records the grant and will
    /// call [`Protocol::on_exit_cs`] after the configured CS duration.
    ///
    /// # Panics
    ///
    /// Panics if called twice within one callback.
    pub fn enter_cs(&mut self) {
        assert!(
            !*self.enter,
            "protocol bug: enter_cs called twice in one callback"
        );
        *self.enter = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_message_meta() {
        assert_eq!(().kind(), "UNIT");
        assert_eq!(().wire_size(), 0);
    }

    #[test]
    fn ctx_buffers_sends() {
        let mut outbox = Vec::new();
        let mut wakes = Vec::new();
        let mut enter = false;
        let mut ctx: Ctx<'_, u32> =
            Ctx::new(NodeId(0), Time(3), 4, &mut outbox, &mut wakes, &mut enter);
        assert_eq!(ctx.me(), NodeId(0));
        assert_eq!(ctx.now(), Time(3));
        assert_eq!(ctx.n(), 4);
        ctx.send(NodeId(2), 99);
        ctx.enter_cs();
        assert_eq!(outbox, vec![(NodeId(2), 99)]);
        assert!(enter);
    }

    #[test]
    fn ctx_buffers_wakes() {
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut wakes = Vec::new();
        let mut enter = false;
        let mut ctx = Ctx::new(NodeId(0), Time(3), 4, &mut outbox, &mut wakes, &mut enter);
        ctx.wake_at(Time(3));
        ctx.wake_in(Time(5));
        assert_eq!(wakes, vec![Time(3), Time(8)]);
    }

    #[test]
    #[should_panic(expected = "wake in the past")]
    fn ctx_rejects_past_wake() {
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut wakes = Vec::new();
        let mut enter = false;
        let mut ctx = Ctx::new(NodeId(0), Time(3), 4, &mut outbox, &mut wakes, &mut enter);
        ctx.wake_at(Time(2));
    }

    #[test]
    #[should_panic(expected = "sent a message to itself")]
    fn ctx_rejects_self_send() {
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut wakes = Vec::new();
        let mut enter = false;
        let mut ctx = Ctx::new(NodeId(1), Time(0), 4, &mut outbox, &mut wakes, &mut enter);
        ctx.send(NodeId(1), 0);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn ctx_rejects_out_of_range_send() {
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut wakes = Vec::new();
        let mut enter = false;
        let mut ctx = Ctx::new(NodeId(1), Time(0), 4, &mut outbox, &mut wakes, &mut enter);
        ctx.send(NodeId(9), 0);
    }

    #[test]
    #[should_panic(expected = "enter_cs called twice")]
    fn ctx_rejects_double_enter() {
        let mut outbox: Vec<(NodeId, u32)> = Vec::new();
        let mut wakes = Vec::new();
        let mut enter = false;
        let mut ctx = Ctx::new(NodeId(1), Time(0), 4, &mut outbox, &mut wakes, &mut enter);
        ctx.enter_cs();
        ctx.enter_cs();
    }
}
