//! Pluggable event-queue backends for the [`Engine`](crate::Engine)'s
//! scheduler.
//!
//! The engine's ordering contract is load-bearing for everything this
//! repo measures: events pop in nondecreasing `(time, seq)` order, where
//! `seq` is the engine's push counter — same-tick events leave in
//! schedule order, which is what makes runs deterministic. This module
//! factors that contract into a sealed [`EventQueue`] trait with two
//! interchangeable backends that must produce **byte-identical traces**
//! (pinned by the `determinism_golden` and `sched_equivalence` tests in
//! the umbrella crate):
//!
//! * [`HeapQueue`] — the classic binary heap over a packed
//!   `(time << 64) | seq` `u128` key: one branch per sift comparison,
//!   `O(log q)` push/pop at any horizon. The safe default for
//!   heavy-tailed latency models.
//! * [`WheelQueue`] — a two-level hierarchical timing wheel with
//!   power-of-two bucketing plus a binary-heap overflow for far-future
//!   timers. Under the default one-tick-per-hop network model nearly
//!   every event lands at `now + 0/1` (the multi-lock `dmx-lockspace`
//!   subsystem schedules even more same-tick flush wakes), so the
//!   `O(log q)` heap sift is wasted ordering work; the wheel makes
//!   push and pop `O(1)` for the near-now common case. The level-0
//!   width is a compile-time parameter; [`Wheel256Queue`] is the
//!   ROADMAP's 256-slot micro-tuning probe, selected only by the
//!   explicit [`Scheduler::Wheel256`] and held to the same
//!   byte-identical-trace contract.
//!
//! # Wheel design
//!
//! Time is split into power-of-two blocks ([`SLOTS`]` = 64` ticks per
//! block, 64 blocks per super-block):
//!
//! * **Level 0** — 64 one-tick slots covering the block the cursor is
//!   in. A slot is a `VecDeque` popped front-to-back, so same-tick
//!   events leave in insertion order; because the engine's `seq` only
//!   grows, insertion order *is* seq order.
//! * **Level 1** — 64 buckets of 64 ticks each covering the cursor's
//!   super-block (4096 ticks). When level 0 drains, the next non-empty
//!   bucket is **rotated** down into level-0 slots (stable
//!   distribution, so per-tick seq order is preserved);
//!   [`Metrics::sched_bucket_rotations`](crate::metrics::Metrics)
//!   counts these.
//! * **Overflow** — events beyond the current super-block
//!   ([`Ctx::wake_at`](crate::Ctx::wake_at) may schedule arbitrarily
//!   far ahead) park in a binary heap ordered by the same packed key.
//!   When the whole wheel drains, overflow events are **promoted
//!   lazily, one level-0 block at a time**: only the earliest block's
//!   events move into level-0 slots, and the rest of their super-block
//!   stays parked in the heap until the cursor actually reaches it.
//!   (Pushes that arrive in the meantime file into level 1, so a
//!   promoted block can later meet a level-1 bucket covering the same
//!   block — the two are merge-sorted by the packed key.)
//!   [`Metrics::sched_overflow_promotions`](crate::metrics::Metrics)
//!   counts promoted events.
//!
//! Occupancy bitmasks (one `u64` per level) make "find the next
//! non-empty slot" a single `trailing_zeros`. All slots, buckets, and
//! scratch structures are persistent — drained, never dropped — so the
//! steady-state hot path performs **zero heap allocations** once warm
//! (pinned by the umbrella crate's `alloc_free` test under both
//! backends).
//!
//! # Determinism contract
//!
//! Both backends pop identical `(time, seq)` sequences provided callers
//! honor the engine's own invariants, which the backends `debug_assert`:
//!
//! 1. `push` is never called with `at` earlier than the last popped
//!    time (the engine never schedules into the past), and
//! 2. `seq` strictly increases across pushes.
//!
//! Under those rules every wheel structure only ever appends events of
//! one tick in increasing `seq` order — direct pushes arrive with
//! ever-larger `seq`, a bucket rotation distributes stably, an overflow
//! promotion drains one block's events from the heap in `(time, seq)`
//! order into empty level-0 slots, and when a promoted block coincides
//! with a level-1 bucket the union is sorted by the packed `(time,
//! seq)` key before filing — so FIFO pops reproduce the heap's total
//! order exactly.
//!
//! # Choosing a backend
//!
//! [`EngineConfig::scheduler`](crate::EngineConfig) selects a
//! [`Scheduler`]; the default [`Scheduler::Auto`] resolves to the wheel
//! exactly when both the latency and CS-duration models are *near-now*:
//! `Fixed(t)` with `t <=` [`WHEEL_NEAR_HORIZON`] or `Uniform { hi, .. }` with
//! `hi <=` [`SLOTS`]. `Exponential` (unbounded tail) and wide models
//! resolve to the heap. The resolution is pure and covered by tests.

use std::collections::{BinaryHeap, VecDeque};

use crate::latency::LatencyModel;
use crate::time::Time;

/// Slots per wheel level (one-tick slots at level 0, [`SLOTS`]-tick
/// buckets at level 1). A power of two so slot indexing is a mask.
pub const SLOTS: usize = 64;

const SLOT_BITS: u32 = SLOTS.trailing_zeros();
const SLOT_MASK: u64 = SLOTS as u64 - 1;

/// Ticks the two wheel levels span together (64 × 64 = 4096): events
/// scheduled beyond the current super-block go to the wheel's overflow
/// heap.
pub const WHEEL_SPAN: u64 = (SLOTS * SLOTS) as u64;

/// Largest `Fixed` latency [`Scheduler::Auto`] still considers
/// *near-now*. A `Fixed(t)` push lands in the overflow heap whenever it
/// crosses a super-block boundary — probability ≈ `t / WHEEL_SPAN` from
/// a uniformly-placed cursor — and an overflow round-trip (heap push,
/// heap pop, re-file) costs more than the plain heap backend would
/// have. Capping the accepted horizon at a quarter super-block keeps
/// that detour rare (≤ 25% of pushes) so the O(1) majority still wins.
pub const WHEEL_NEAR_HORIZON: u64 = WHEEL_SPAN / 4;

/// Event-queue backend selection, set via
/// [`EngineConfig::scheduler`](crate::EngineConfig).
///
/// # Examples
///
/// ```
/// use dmx_simnet::{LatencyModel, SchedBackend, Scheduler, Time};
///
/// // The default one-tick-per-hop model is the wheel's home turf.
/// let fixed = LatencyModel::Fixed(Time(1));
/// assert_eq!(Scheduler::Auto.resolve(fixed, fixed), SchedBackend::Wheel);
///
/// // Heavy-tailed latencies resolve to the heap.
/// let exp = LatencyModel::Exponential { mean: Time(4) };
/// assert_eq!(Scheduler::Auto.resolve(exp, fixed), SchedBackend::Heap);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// Pick per run: the wheel when both the latency and CS-duration
    /// models are near-now (`Fixed` within [`WHEEL_NEAR_HORIZON`] or
    /// `Uniform` with `hi <= `[`SLOTS`]), the heap otherwise.
    #[default]
    Auto,
    /// Always the binary-heap backend ([`HeapQueue`]).
    Heap,
    /// Always the timing-wheel backend ([`WheelQueue`]).
    Wheel,
    /// The micro-tuning probe: the timing wheel with a **256-slot
    /// level 0** ([`Wheel256Queue`]) instead of 64. Never selected by
    /// `Auto` — it exists so the `engine_hot_loop` suite can measure
    /// whether the wider level 0 (fewer bucket rotations on
    /// `Uniform`-latency sweeps, at the cost of a 4-word occupancy
    /// scan) pays off before it is ever wired into the heuristic.
    Wheel256,
}

/// The backend a [`Scheduler`] resolved to for a concrete run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedBackend {
    /// Binary heap over packed `(time, seq)` keys.
    Heap,
    /// Hierarchical timing wheel with heap overflow.
    Wheel,
    /// The 256-slot-level-0 wheel variant (explicit probe only).
    Wheel256,
}

impl SchedBackend {
    /// Stable lowercase label (used in bench table keys and JSON).
    pub fn name(self) -> &'static str {
        match self {
            SchedBackend::Heap => "heap",
            SchedBackend::Wheel => "wheel",
            SchedBackend::Wheel256 => "wheel256",
        }
    }
}

/// `true` when `model` schedules (almost) everything near now, so the
/// wheel's O(1) buckets pay off.
fn near_now(model: LatencyModel) -> bool {
    match model {
        LatencyModel::Fixed(t) => t.0 <= WHEEL_NEAR_HORIZON,
        LatencyModel::Uniform { hi, .. } => hi.0 <= SLOTS as u64,
        // Unbounded tail: samples routinely overshoot any fixed horizon.
        LatencyModel::Exponential { .. } => false,
    }
}

impl Scheduler {
    /// Resolves the selection against the run's latency models. Pure:
    /// the same inputs always pick the same backend, so a config is
    /// reproducible by construction.
    pub fn resolve(self, latency: LatencyModel, cs_duration: LatencyModel) -> SchedBackend {
        match self {
            Scheduler::Heap => SchedBackend::Heap,
            Scheduler::Wheel => SchedBackend::Wheel,
            Scheduler::Wheel256 => SchedBackend::Wheel256,
            Scheduler::Auto => {
                if near_now(latency) && near_now(cs_duration) {
                    SchedBackend::Wheel
                } else {
                    SchedBackend::Heap
                }
            }
        }
    }
}

/// Counters a backend accumulates while reorganizing its internals;
/// drained into [`Metrics`](crate::metrics::Metrics) by the engine
/// after every pop. Always zero for [`HeapQueue`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Level-1 buckets rotated down into level-0 slots.
    pub bucket_rotations: u64,
    /// Events promoted out of the overflow heap into the wheel.
    pub overflow_promotions: u64,
}

mod sealed {
    /// Seals [`EventQueue`](super::EventQueue): the engine's ordering
    /// contract is verified for exactly the backends in this module,
    /// and foreign backends could silently break determinism.
    pub trait Sealed {}
}

/// The engine's scheduling core: a priority queue over `(time, seq)`
/// keys, popped earliest-first with `seq` breaking same-tick ties.
///
/// Sealed — [`HeapQueue`] and [`WheelQueue`] are the only
/// implementations, selected via
/// [`EngineConfig::scheduler`](crate::EngineConfig). Both are pinned to
/// produce identical pop orders by the umbrella crate's equivalence
/// tests.
///
/// Callers must honor two invariants (the engine does by construction):
/// `at` is never earlier than the last popped time, and `seq` strictly
/// increases across pushes.
pub trait EventQueue<T>: sealed::Sealed {
    /// Enqueues `item` at absolute time `at` with tie-break rank `seq`.
    fn push(&mut self, at: Time, seq: u64, item: T);

    /// Removes and returns the earliest `(time, seq)` event.
    fn pop_earliest(&mut self) -> Option<(Time, T)>;

    /// The earliest queued event's time without popping it.
    fn peek_time(&self) -> Option<Time>;

    /// Number of queued events.
    fn len(&self) -> usize;

    /// `true` when nothing is queued.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pre-sizes internal storage for `additional` more events so a
    /// bounded run performs no allocation inside the hot loop.
    fn reserve(&mut self, additional: usize);

    /// Returns and resets the counters accumulated since the last call.
    fn drain_stats(&mut self) -> SchedStats;
}

#[inline]
fn pack(at: Time, seq: u64) -> u128 {
    (u128::from(at.0) << 64) | u128::from(seq)
}

/// One queued event of a heap-ordered structure: the packed
/// `(time << 64) | seq` key makes sift comparisons — the most-executed
/// comparisons in the engine — a single branch.
struct Entry<T> {
    key: u128,
    item: T,
}

impl<T> Entry<T> {
    #[inline]
    fn at(&self) -> Time {
        Time((self.key >> 64) as u64)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; reverse to pop earliest (time, seq).
        other.key.cmp(&self.key)
    }
}

/// The classic backend: a binary heap over packed `(time, seq)` `u128`
/// keys — `O(log q)` push/pop at any horizon, no assumptions about the
/// event-time distribution.
///
/// # Examples
///
/// ```
/// use dmx_simnet::sched::{EventQueue, HeapQueue};
/// use dmx_simnet::Time;
///
/// let mut q = HeapQueue::new();
/// q.push(Time(5), 0, "late");
/// q.push(Time(1), 1, "early");
/// assert_eq!(q.pop_earliest(), Some((Time(1), "early")));
/// assert_eq!(q.peek_time(), Some(Time(5)));
/// ```
pub struct HeapQueue<T> {
    heap: BinaryHeap<Entry<T>>,
}

impl<T> HeapQueue<T> {
    /// An empty heap.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<T> sealed::Sealed for HeapQueue<T> {}

impl<T> EventQueue<T> for HeapQueue<T> {
    #[inline]
    fn push(&mut self, at: Time, seq: u64, item: T) {
        self.heap.push(Entry {
            key: pack(at, seq),
            item,
        });
    }

    #[inline]
    fn pop_earliest(&mut self) -> Option<(Time, T)> {
        self.heap.pop().map(|e| (e.at(), e.item))
    }

    fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(Entry::at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    fn drain_stats(&mut self) -> SchedStats {
        SchedStats::default()
    }
}

/// Occupancy words a wheel's level 0 can need at most (256 slots / 64
/// bits). The 64-slot default uses one word; the compiler
/// constant-folds the per-word loops away for it.
const MAX_OCC_WORDS: usize = 4;

/// The hierarchical timing-wheel backend: `O(1)` push/pop for events
/// within [`WHEEL_SPAN`] ticks of now, heap overflow beyond. See the
/// [module docs](self) for the full design and determinism argument.
///
/// The level-0 slot count is a compile-time parameter (`2^SLOT_BITS0`
/// one-tick slots; level 1 always has [`SLOTS`] buckets of `2^SLOT_BITS0`
/// ticks each). The default is the measured 64-slot wheel; the 256-slot
/// [`Wheel256Queue`] alias is the ROADMAP's micro-tuning probe,
/// selected only by the explicit [`Scheduler::Wheel256`].
///
/// # Examples
///
/// ```
/// use dmx_simnet::sched::{EventQueue, WheelQueue};
/// use dmx_simnet::Time;
///
/// let mut q: WheelQueue<&str> = WheelQueue::new();
/// q.push(Time(1), 0, "near");
/// q.push(Time(1_000_000), 1, "far"); // parks in the overflow heap
/// assert_eq!(q.pop_earliest(), Some((Time(1), "near")));
/// assert_eq!(q.pop_earliest(), Some((Time(1_000_000), "far")));
/// assert!(q.is_empty());
/// ```
pub struct WheelQueue<T, const SLOT_BITS0: u32 = 6> {
    /// Block (`at >> SLOT_BITS0`) level 0 currently covers.
    block0: u64,
    /// Super-block (`at >> (SLOT_BITS0 + 6)`) level 1 currently covers.
    block1: u64,
    /// Absolute time of the last pop; level-0 scans start at its slot.
    cursor: u64,
    len: usize,
    /// Occupancy bitmask of `level0` (bit *s* set ⇔ slot *s*
    /// non-empty), `2^SLOT_BITS0` bits spread over the first
    /// `2^SLOT_BITS0 / 64` words.
    occ0: [u64; MAX_OCC_WORDS],
    /// Occupancy bitmask of `level1`.
    occ1: u64,
    /// One-tick FIFO slots; the slot index *is* the tick (mod the slot
    /// count), so entries carry no key.
    level0: Vec<VecDeque<T>>,
    /// `2^SLOT_BITS0`-tick buckets; entries keep their key for the
    /// rotation down into level 0.
    level1: Vec<Vec<Entry<T>>>,
    /// Far-future timers, beyond the current super-block — plus, after
    /// a lazy promotion, the unpromoted tail of the super-block the
    /// wheel jumped into.
    overflow: BinaryHeap<Entry<T>>,
    /// Persistent merge buffer for promotions that coincide with a
    /// level-1 bucket (drained, never dropped — the hot path stays
    /// allocation-free once warm).
    promote_scratch: Vec<Entry<T>>,
    stats: SchedStats,
    #[cfg(debug_assertions)]
    last_seq: Option<u64>,
}

/// The 256-slot-level-0 wheel — the ROADMAP's per-protocol tuning
/// probe. Wider level 0 means a 4× rarer bucket rotation for spread-out
/// (`Uniform`) schedules, paid for with a 4-word occupancy scan per
/// pop; the `engine_hot_loop` suite's `wheel256` cells measure whether
/// that trade wins before `Auto` would ever adopt it.
pub type Wheel256Queue<T> = WheelQueue<T, 8>;

impl<T, const SLOT_BITS0: u32> WheelQueue<T, SLOT_BITS0> {
    /// Level-0 slot count.
    const SLOTS0: usize = 1 << SLOT_BITS0;
    const MASK0: u64 = (1 << SLOT_BITS0) - 1;
    /// Occupancy words level 0 actually uses.
    const WORDS: usize = Self::SLOTS0.div_ceil(64);

    /// An empty wheel with its cursor at [`Time::ZERO`].
    pub fn new() -> Self {
        assert!(
            (6..=8).contains(&SLOT_BITS0),
            "wheel level 0 supports 64..=256 slots"
        );
        WheelQueue {
            block0: 0,
            block1: 0,
            cursor: 0,
            len: 0,
            occ0: [0; MAX_OCC_WORDS],
            occ1: 0,
            level0: (0..Self::SLOTS0).map(|_| VecDeque::new()).collect(),
            level1: (0..SLOTS).map(|_| Vec::new()).collect(),
            overflow: BinaryHeap::new(),
            promote_scratch: Vec::new(),
            stats: SchedStats::default(),
            #[cfg(debug_assertions)]
            last_seq: None,
        }
    }

    /// Counters accumulated so far (without resetting them).
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    #[inline]
    fn occ0_set(&mut self, s: usize) {
        self.occ0[s >> 6] |= 1 << (s & 63);
    }

    #[inline]
    fn occ0_clear(&mut self, s: usize) {
        self.occ0[s >> 6] &= !(1 << (s & 63));
    }

    /// First occupied level-0 slot at or after `start`, if any. One
    /// masked `trailing_zeros` for the 64-slot wheel; up to
    /// `Self::WORDS` of them for the wider probe.
    #[inline]
    fn occ0_first_from(&self, start: usize) -> Option<usize> {
        let word = start >> 6;
        let masked = self.occ0[word] & (u64::MAX << (start & 63));
        if masked != 0 {
            return Some((word << 6) | masked.trailing_zeros() as usize);
        }
        for w in word + 1..Self::WORDS {
            if self.occ0[w] != 0 {
                return Some((w << 6) | self.occ0[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Files `e` into its level-0 slot. Caller guarantees `e` lies in
    /// the current level-0 block and arrives in `(time, seq)` order
    /// relative to the slot's existing tail.
    #[inline]
    fn file_into_level0(&mut self, e: Entry<T>) {
        debug_assert_eq!(e.at().0 >> SLOT_BITS0, self.block0);
        let s = (e.at().0 & Self::MASK0) as usize;
        self.level0[s].push_back(e.item);
        self.occ0_set(s);
    }

    /// Pops every overflow event belonging to level-0 block `block`
    /// into `into`, counting each as a promotion. The heap yields them
    /// in `(time, seq)` order, so `into` stays sorted if it was empty.
    #[inline]
    fn drain_overflow_block(&mut self, block: u64, into: &mut Vec<Entry<T>>) {
        while let Some(head) = self.overflow.peek() {
            if head.at().0 >> SLOT_BITS0 != block {
                break;
            }
            into.push(self.overflow.pop().expect("just peeked"));
            self.stats.overflow_promotions += 1;
        }
    }
}

impl<T, const SLOT_BITS0: u32> Default for WheelQueue<T, SLOT_BITS0> {
    fn default() -> Self {
        WheelQueue::new()
    }
}

impl<T, const SLOT_BITS0: u32> sealed::Sealed for WheelQueue<T, SLOT_BITS0> {}

impl<T, const SLOT_BITS0: u32> EventQueue<T> for WheelQueue<T, SLOT_BITS0> {
    #[inline]
    fn push(&mut self, at: Time, seq: u64, item: T) {
        debug_assert!(
            at.0 >= self.cursor,
            "wheel push at {at} before cursor t{}",
            self.cursor
        );
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_seq.is_none_or(|last| seq > last),
                "seq must strictly increase (got {seq})"
            );
            self.last_seq = Some(seq);
        }
        self.len += 1;
        let t = at.0;
        if t >> SLOT_BITS0 == self.block0 {
            // The near-now common case: O(1) append, no key stored —
            // the slot *is* the tick and append order is seq order.
            let s = (t & Self::MASK0) as usize;
            self.level0[s].push_back(item);
            self.occ0_set(s);
        } else if t >> (SLOT_BITS0 + SLOT_BITS) == self.block1 {
            let b = ((t >> SLOT_BITS0) & SLOT_MASK) as usize;
            self.level1[b].push(Entry {
                key: pack(at, seq),
                item,
            });
            self.occ1 |= 1 << b;
        } else {
            // Beyond the current super-block: park far-future timers in
            // the overflow heap (promoted when the wheel drains).
            self.overflow.push(Entry {
                key: pack(at, seq),
                item,
            });
        }
    }

    fn pop_earliest(&mut self) -> Option<(Time, T)> {
        if self.len == 0 {
            return None;
        }
        loop {
            // Level 0: first occupied slot at or after the cursor.
            let start = (self.cursor & Self::MASK0) as usize;
            if let Some(s) = self.occ0_first_from(start) {
                let slot = &mut self.level0[s];
                let item = slot.pop_front().expect("occupancy bit set on empty slot");
                if slot.is_empty() {
                    self.occ0_clear(s);
                }
                self.len -= 1;
                let at = (self.block0 << SLOT_BITS0) | s as u64;
                self.cursor = at;
                return Some((Time(at), item));
            }
            // Level 0 drained: the next event lives in a level-1
            // bucket, in the overflow heap, or both. (Lazy promotion
            // parks the tail of a super-block in the heap, where it can
            // end up behind — or level with — later pushes that filed
            // into level 1.) Jump to whichever block comes first.
            let l1_block = (self.occ1 != 0).then(|| {
                // A bucket's block index is recoverable from the bucket
                // number alone: every entry shares `(block1 << 6) | b`.
                let b = self.occ1.trailing_zeros() as usize;
                (b, (self.block1 << SLOT_BITS) | b as u64)
            });
            let of_block = self.overflow.peek().map(|e| e.at().0 >> SLOT_BITS0);
            let target = match (l1_block, of_block) {
                (Some((_, lb)), Some(ob)) => lb.min(ob),
                (Some((_, lb)), None) => lb,
                (None, Some(ob)) => ob,
                (None, None) => unreachable!("len > 0 with every structure empty"),
            };
            debug_assert!(target > self.block0);
            self.block1 = target >> SLOT_BITS;
            self.block0 = target;
            self.cursor = self.block0 << SLOT_BITS0;

            match l1_block {
                Some((b, lb)) if lb == target => {
                    self.occ1 &= !(1 << b);
                    self.stats.bucket_rotations += 1;
                    if of_block == Some(target) {
                        // The promoted block and a level-1 bucket cover
                        // the same 64 ticks: merge through the scratch
                        // buffer, sorted by the packed `(time, seq)`
                        // key, so per-tick FIFO order stays seq order.
                        let mut scratch = std::mem::take(&mut self.promote_scratch);
                        scratch.append(&mut self.level1[b]);
                        self.drain_overflow_block(target, &mut scratch);
                        scratch.sort_unstable_by_key(|e| e.key);
                        for e in scratch.drain(..) {
                            self.file_into_level0(e);
                        }
                        self.promote_scratch = scratch; // drained; capacity retained
                    } else {
                        // Rotate the bucket down into level 0 (stable
                        // distribution preserves per-tick seq order).
                        let mut bucket = std::mem::take(&mut self.level1[b]);
                        for e in bucket.drain(..) {
                            self.file_into_level0(e);
                        }
                        self.level1[b] = bucket;
                    }
                }
                _ => {
                    // Overflow only: promote just this block's events,
                    // filing straight into level 0 — heap pops arrive
                    // in `(time, seq)` order, so per-slot FIFO order is
                    // seq order. The rest of the super-block stays
                    // parked; each far-future event still round-trips
                    // the heap at most once, and blocks the cursor
                    // never visits cost nothing.
                    while let Some(head) = self.overflow.peek() {
                        if head.at().0 >> SLOT_BITS0 != target {
                            break;
                        }
                        let e = self.overflow.pop().expect("just peeked");
                        self.stats.overflow_promotions += 1;
                        self.file_into_level0(e);
                    }
                }
            }
        }
    }

    fn peek_time(&self) -> Option<Time> {
        if self.len == 0 {
            return None;
        }
        let start = (self.cursor & Self::MASK0) as usize;
        if let Some(s) = self.occ0_first_from(start) {
            return Some(Time((self.block0 << SLOT_BITS0) | s as u64));
        }
        // Lazy promotion can leave overflow events *earlier* than the
        // next level-1 bucket (the unpromoted tail of the current
        // super-block), so the earliest of the two structures wins.
        let l1_min = if self.occ1 != 0 {
            let b = self.occ1.trailing_zeros() as usize;
            // Buckets are not internally time-sorted; scan for the
            // minimum (bounded by bucket size — peek is off the hot
            // path, the engine only pops).
            self.level1[b].iter().map(Entry::at).min()
        } else {
            None
        };
        let of_min = self.overflow.peek().map(Entry::at);
        match (l1_min, of_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn reserve(&mut self, additional: usize) {
        // Any single tick, bucket, or the overflow heap could briefly
        // hold every in-flight event, so size them all: O(slots ×
        // additional) memory, bounded and paid only by callers that
        // want strict allocation-freedom (`Engine::reserve`).
        for slot in &mut self.level0 {
            slot.reserve(additional);
        }
        for bucket in &mut self.level1 {
            bucket.reserve(additional);
        }
        self.overflow.reserve(additional);
        self.promote_scratch.reserve(additional);
    }

    fn drain_stats(&mut self) -> SchedStats {
        std::mem::take(&mut self.stats)
    }
}

/// The engine's concrete queue: static dispatch over the two sealed
/// backends (a predictable branch, not a vtable, on the hottest loop in
/// the workspace).
pub(crate) enum ActiveQueue<T> {
    Heap(HeapQueue<T>),
    Wheel(WheelQueue<T>),
    Wheel256(Wheel256Queue<T>),
}

impl<T> ActiveQueue<T> {
    pub(crate) fn for_backend(backend: SchedBackend) -> Self {
        match backend {
            SchedBackend::Heap => ActiveQueue::Heap(HeapQueue::new()),
            SchedBackend::Wheel => ActiveQueue::Wheel(WheelQueue::new()),
            SchedBackend::Wheel256 => ActiveQueue::Wheel256(Wheel256Queue::new()),
        }
    }
}

impl<T> sealed::Sealed for ActiveQueue<T> {}

impl<T> EventQueue<T> for ActiveQueue<T> {
    #[inline]
    fn push(&mut self, at: Time, seq: u64, item: T) {
        match self {
            ActiveQueue::Heap(q) => q.push(at, seq, item),
            ActiveQueue::Wheel(q) => q.push(at, seq, item),
            ActiveQueue::Wheel256(q) => q.push(at, seq, item),
        }
    }

    #[inline]
    fn pop_earliest(&mut self) -> Option<(Time, T)> {
        match self {
            ActiveQueue::Heap(q) => q.pop_earliest(),
            ActiveQueue::Wheel(q) => q.pop_earliest(),
            ActiveQueue::Wheel256(q) => q.pop_earliest(),
        }
    }

    fn peek_time(&self) -> Option<Time> {
        match self {
            ActiveQueue::Heap(q) => q.peek_time(),
            ActiveQueue::Wheel(q) => q.peek_time(),
            ActiveQueue::Wheel256(q) => q.peek_time(),
        }
    }

    fn len(&self) -> usize {
        match self {
            ActiveQueue::Heap(q) => q.len(),
            ActiveQueue::Wheel(q) => q.len(),
            ActiveQueue::Wheel256(q) => q.len(),
        }
    }

    fn reserve(&mut self, additional: usize) {
        match self {
            ActiveQueue::Heap(q) => q.reserve(additional),
            ActiveQueue::Wheel(q) => q.reserve(additional),
            ActiveQueue::Wheel256(q) => q.reserve(additional),
        }
    }

    #[inline]
    fn drain_stats(&mut self) -> SchedStats {
        match self {
            ActiveQueue::Heap(q) => q.drain_stats(),
            ActiveQueue::Wheel(q) => q.drain_stats(),
            ActiveQueue::Wheel256(q) => q.drain_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Pushes the same schedule into the heap and one wheel width and
    /// asserts identical pop sequences.
    fn assert_equivalent_width<const B: u32>(schedule: &[(u64, &'static str)]) {
        let mut heap = HeapQueue::new();
        let mut wheel: WheelQueue<&'static str, B> = WheelQueue::new();
        for (seq, &(at, label)) in schedule.iter().enumerate() {
            heap.push(Time(at), seq as u64, label);
            wheel.push(Time(at), seq as u64, label);
        }
        loop {
            let h = heap.pop_earliest();
            let w = wheel.pop_earliest();
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
    }

    /// [`assert_equivalent_width`] for both wheel widths — the 64-slot
    /// default and the 256-slot probe share the determinism contract.
    fn assert_equivalent(schedule: &[(u64, &'static str)]) {
        assert_equivalent_width::<6>(schedule);
        assert_equivalent_width::<8>(schedule);
    }

    #[test]
    fn same_tick_ties_pop_in_seq_order() {
        assert_equivalent(&[(3, "a"), (3, "b"), (1, "c"), (3, "d"), (1, "e")]);
    }

    #[test]
    fn far_future_overflow_and_block_crossings_match_the_heap() {
        assert_equivalent(&[
            (0, "now"),
            (63, "block-edge"),
            (64, "next-block"),
            (4095, "superblock-edge"),
            (4096, "next-superblock"),
            (1_000_000, "far"),
            (1_000_000, "far-tie"),
            (5, "near"),
        ]);
    }

    #[test]
    fn interleaved_pushes_and_pops_stay_ordered() {
        let mut heap = HeapQueue::new();
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut HeapQueue<u64>, wheel: &mut WheelQueue<u64>, at: u64| {
            heap.push(Time(at), seq, seq);
            wheel.push(Time(at), seq, seq);
            seq += 1;
        };
        push(&mut heap, &mut wheel, 0);
        push(&mut heap, &mut wheel, 10_000);
        let (t, _) = wheel.pop_earliest().unwrap();
        assert_eq!(heap.pop_earliest().unwrap().0, t);
        // Push behind the far-future event but ahead of the cursor.
        push(&mut heap, &mut wheel, t.0 + 1);
        push(&mut heap, &mut wheel, t.0 + 70); // next block
        push(&mut heap, &mut wheel, t.0 + 5000); // overflow again
        loop {
            let h = heap.pop_earliest();
            let w = wheel.pop_earliest();
            assert_eq!(h, w);
            if h.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn wheel_counts_rotations_and_promotions() {
        let mut wheel: WheelQueue<()> = WheelQueue::new();
        wheel.push(Time(0), 0, ());
        wheel.push(Time(100), 1, ()); // level 1 (different block)
        wheel.push(Time(10_000), 2, ()); // overflow
        while wheel.pop_earliest().is_some() {}
        let stats = wheel.stats();
        assert!(stats.bucket_rotations >= 1, "{stats:?}");
        assert_eq!(stats.overflow_promotions, 1);
        // drain_stats resets.
        assert_eq!(wheel.drain_stats(), stats);
        assert_eq!(wheel.drain_stats(), SchedStats::default());
    }

    #[test]
    fn promotion_is_lazy_one_block_at_a_time() {
        // Two far-future events in the same super-block (blocks 156 and
        // 160): popping the first promotes *only* its block; the second
        // stays parked in the heap until its own block is reached.
        let mut wheel: WheelQueue<&str> = WheelQueue::new();
        wheel.push(Time(10_000), 0, "first");
        wheel.push(Time(10_300), 1, "second");
        assert_eq!(wheel.pop_earliest(), Some((Time(10_000), "first")));
        assert_eq!(wheel.stats().overflow_promotions, 1, "second block parked");
        assert_eq!(wheel.pop_earliest(), Some((Time(10_300), "second")));
        assert_eq!(wheel.stats().overflow_promotions, 2);
        assert!(wheel.is_empty());
    }

    #[test]
    fn parked_overflow_merges_with_later_level1_pushes() {
        // A lazy leftover (t=10_301, parked at push time) can meet
        // level-1 entries covering the same block (160), pushed after
        // the wheel jumped into the leftover's super-block. The merge
        // must interleave the two sources by (time, seq) — including a
        // same-tick tie across structures — exactly like the heap.
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut seq = 0u64;
        let mut push = |heap: &mut HeapQueue<u64>, wheel: &mut WheelQueue<u64>, at: u64| {
            heap.push(Time(at), seq, seq);
            wheel.push(Time(at), seq, seq);
            seq += 1;
        };
        push(&mut heap, &mut wheel, 10_000); // block 156
        push(&mut heap, &mut wheel, 10_301); // block 160, parked
        assert_eq!(heap.pop_earliest(), wheel.pop_earliest()); // t=10_000
        push(&mut heap, &mut wheel, 10_240); // block 160, files into level 1
        push(&mut heap, &mut wheel, 10_301); // same tick as the leftover
        loop {
            let h = heap.pop_earliest();
            assert_eq!(h, wheel.pop_earliest());
            if h.is_none() {
                break;
            }
        }
        assert!(wheel.is_empty() && heap.is_empty());
    }

    #[test]
    fn peek_sees_parked_overflow_before_level1() {
        // Leftover at t=10_100 (block 157) parked by a lazy promotion;
        // a later push files t=10_300 into level 1. peek must report
        // the *overflow* head — the old level1-first peek would lie.
        let mut wheel: WheelQueue<&str> = WheelQueue::new();
        wheel.push(Time(10_000), 0, "now");
        wheel.push(Time(10_100), 1, "parked");
        assert_eq!(wheel.pop_earliest(), Some((Time(10_000), "now")));
        wheel.push(Time(10_300), 2, "bucketed");
        assert_eq!(wheel.peek_time(), Some(Time(10_100)));
        assert_eq!(wheel.pop_earliest(), Some((Time(10_100), "parked")));
        assert_eq!(wheel.peek_time(), Some(Time(10_300)));
        assert_eq!(wheel.pop_earliest(), Some((Time(10_300), "bucketed")));
        assert!(wheel.is_empty());
    }

    #[test]
    fn peek_matches_next_pop_everywhere() {
        fn check<const B: u32>() {
            let mut wheel: WheelQueue<u64, B> = WheelQueue::new();
            for (seq, at) in [7u64, 3, 3, 200, 9999, 40_000].into_iter().enumerate() {
                wheel.push(Time(at), seq as u64, at);
            }
            while let Some(peeked) = wheel.peek_time() {
                let (t, _) = wheel.pop_earliest().unwrap();
                assert_eq!(peeked, t);
            }
            assert_eq!(wheel.peek_time(), None);
            assert_eq!(wheel.pop_earliest(), None);
        }
        check::<6>();
        check::<8>();
    }

    #[test]
    fn auto_resolution_rules() {
        let fixed1 = LatencyModel::Fixed(Time(1));
        let fixed_edge = LatencyModel::Fixed(Time(WHEEL_NEAR_HORIZON));
        let fixed_huge = LatencyModel::Fixed(Time(WHEEL_NEAR_HORIZON + 1));
        let small_uniform = LatencyModel::Uniform {
            lo: Time(1),
            hi: Time(SLOTS as u64),
        };
        let wide_uniform = LatencyModel::Uniform {
            lo: Time(1),
            hi: Time(SLOTS as u64 + 1),
        };
        let exp = LatencyModel::Exponential { mean: Time(4) };
        let auto = Scheduler::Auto;
        assert_eq!(auto.resolve(fixed1, fixed1), SchedBackend::Wheel);
        assert_eq!(auto.resolve(small_uniform, fixed1), SchedBackend::Wheel);
        assert_eq!(auto.resolve(fixed1, small_uniform), SchedBackend::Wheel);
        assert_eq!(auto.resolve(fixed_edge, fixed1), SchedBackend::Wheel);
        assert_eq!(auto.resolve(fixed_huge, fixed1), SchedBackend::Heap);
        assert_eq!(auto.resolve(wide_uniform, fixed1), SchedBackend::Heap);
        assert_eq!(auto.resolve(exp, fixed1), SchedBackend::Heap);
        assert_eq!(auto.resolve(fixed1, exp), SchedBackend::Heap);
        // Explicit selections override the heuristic.
        assert_eq!(Scheduler::Heap.resolve(fixed1, fixed1), SchedBackend::Heap);
        assert_eq!(Scheduler::Wheel.resolve(exp, exp), SchedBackend::Wheel);
    }

    #[test]
    fn backend_names_are_stable() {
        assert_eq!(SchedBackend::Heap.name(), "heap");
        assert_eq!(SchedBackend::Wheel.name(), "wheel");
    }
}
