use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulated time in abstract ticks.
///
/// The engine is a discrete-event simulator: time jumps from event to
/// event. Ticks have no physical unit; the paper's metrics (message counts,
/// synchronization delay *in messages*) are latency-independent, and the
/// time-valued metrics are reported in these same ticks.
///
/// # Examples
///
/// ```
/// use dmx_simnet::Time;
///
/// let t = Time(10) + Time(5);
/// assert_eq!(t, Time(15));
/// assert_eq!(t - Time(10), Time(5));
/// assert_eq!(t.to_string(), "t15");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of simulated time.
    pub const ZERO: Time = Time(0);

    /// Tick count as a plain integer.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::Time;
    /// assert_eq!(Time(7).ticks(), 7);
    /// ```
    #[inline]
    pub fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating difference, useful for durations when ordering is not
    /// statically known.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::Time;
    /// assert_eq!(Time(3).saturating_since(Time(5)), Time(0));
    /// assert_eq!(Time(5).saturating_since(Time(3)), Time(2));
    /// ```
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> Time {
        Time(self.0.saturating_sub(earlier.0))
    }
}

impl Add for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    #[inline]
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for Time {
    fn from(value: u64) -> Self {
        Time(value)
    }
}

impl From<Time> for u64 {
    fn from(value: Time) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(Time(2) + Time(3), Time(5));
        assert_eq!(Time(5) - Time(3), Time(2));
        let mut t = Time(1);
        t += Time(4);
        assert_eq!(t, Time(5));
    }

    #[test]
    fn ordering_and_default() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::default(), Time::ZERO);
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(u64::from(Time::from(9u64)), 9);
    }

    #[test]
    fn display() {
        assert_eq!(Time(12).to_string(), "t12");
    }
}
