//! Event traces.
//!
//! A trace records everything that happened in a run at message-kind
//! granularity, using interned `&'static str` kind labels so recording
//! is cheap (one `Vec` push per event, no string allocation). The golden tests replay the paper's Figure 2 and Figure 6
//! walkthroughs and assert the traces match the printed tables; the
//! examples pretty-print traces so a reader can follow a REQUEST hop by
//! hop, exactly like the paper's prose does.

use std::fmt;

use dmx_topology::NodeId;

use crate::time::Time;

/// One observable step of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A local user asked to enter the critical section.
    Request {
        /// When.
        at: Time,
        /// Which node.
        node: NodeId,
    },
    /// A protocol message left its sender.
    Send {
        /// When.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Message kind label (interned: [`MessageMeta::kind`]
        /// returns `&'static str`, so recording an event allocates no
        /// string).
        ///
        /// [`MessageMeta::kind`]: crate::MessageMeta::kind
        kind: &'static str,
    },
    /// A protocol message reached its receiver.
    Deliver {
        /// When.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Receiver.
        dst: NodeId,
        /// Message kind label (interned: [`MessageMeta::kind`]
        /// returns `&'static str`, so recording an event allocates no
        /// string).
        ///
        /// [`MessageMeta::kind`]: crate::MessageMeta::kind
        kind: &'static str,
    },
    /// A protocol message was lost by the fault model and will never
    /// arrive.
    Drop {
        /// When it was sent.
        at: Time,
        /// Sender.
        src: NodeId,
        /// Intended receiver.
        dst: NodeId,
        /// Message kind label (interned: [`MessageMeta::kind`]
        /// returns `&'static str`, so recording an event allocates no
        /// string).
        ///
        /// [`MessageMeta::kind`]: crate::MessageMeta::kind
        kind: &'static str,
    },
    /// A node entered its critical section.
    Enter {
        /// When.
        at: Time,
        /// Which node.
        node: NodeId,
    },
    /// A node left its critical section.
    Exit {
        /// When.
        at: Time,
        /// Which node.
        node: NodeId,
    },
    /// A timer set with `Ctx::wake_at` fired on a node.
    Wake {
        /// When.
        at: Time,
        /// Which node.
        node: NodeId,
    },
}

impl TraceEvent {
    /// The simulated time of the event.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_simnet::trace::TraceEvent;
    /// use dmx_simnet::Time;
    /// use dmx_topology::NodeId;
    ///
    /// let e = TraceEvent::Enter { at: Time(4), node: NodeId(2) };
    /// assert_eq!(e.at(), Time(4));
    /// ```
    pub fn at(&self) -> Time {
        match self {
            TraceEvent::Request { at, .. }
            | TraceEvent::Send { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Drop { at, .. }
            | TraceEvent::Enter { at, .. }
            | TraceEvent::Exit { at, .. }
            | TraceEvent::Wake { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Request { at, node } => write!(f, "{at} {node} requests CS"),
            TraceEvent::Send { at, src, dst, kind } => {
                write!(f, "{at} {src} -> {dst} send {kind}")
            }
            TraceEvent::Deliver { at, src, dst, kind } => {
                write!(f, "{at} {src} => {dst} deliver {kind}")
            }
            TraceEvent::Drop { at, src, dst, kind } => {
                write!(f, "{at} {src} -x {dst} DROPPED {kind}")
            }
            TraceEvent::Enter { at, node } => write!(f, "{at} {node} ENTERS CS"),
            TraceEvent::Exit { at, node } => write!(f, "{at} {node} exits CS"),
            TraceEvent::Wake { at, node } => write!(f, "{at} {node} wakes"),
        }
    }
}

/// An ordered list of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Creates an empty trace.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert!(Trace::new().is_empty());
    /// ```
    pub fn new() -> Self {
        Trace::default()
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// Number of recorded events.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert_eq!(Trace::new().len(), 0);
    /// ```
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when nothing was recorded.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert!(Trace::new().is_empty());
    /// ```
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over the events in order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert_eq!(Trace::new().iter().count(), 0);
    /// ```
    pub fn iter(&self) -> std::slice::Iter<'_, TraceEvent> {
        self.events.iter()
    }

    /// All events as a slice.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert!(Trace::new().as_slice().is_empty());
    /// ```
    pub fn as_slice(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Only the deliveries, in order — the unit the paper counts.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert!(Trace::new().deliveries().is_empty());
    /// ```
    pub fn deliveries(&self) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Deliver { .. }))
            .collect()
    }

    /// The sequence of nodes that entered the critical section, in order.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::trace::Trace;
    /// assert!(Trace::new().entry_order().is_empty());
    /// ```
    pub fn entry_order(&self) -> Vec<NodeId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Enter { node, .. } => Some(*node),
                _ => None,
            })
            .collect()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::slice::Iter<'a, TraceEvent>;
    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(TraceEvent::Request {
            at: Time(0),
            node: NodeId(1),
        });
        t.push(TraceEvent::Send {
            at: Time(0),
            src: NodeId(1),
            dst: NodeId(0),
            kind: "REQUEST",
        });
        t.push(TraceEvent::Deliver {
            at: Time(1),
            src: NodeId(1),
            dst: NodeId(0),
            kind: "REQUEST",
        });
        t.push(TraceEvent::Enter {
            at: Time(2),
            node: NodeId(1),
        });
        t.push(TraceEvent::Exit {
            at: Time(3),
            node: NodeId(1),
        });
        t
    }

    #[test]
    fn filters() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.deliveries().len(), 1);
        assert_eq!(t.entry_order(), vec![NodeId(1)]);
    }

    #[test]
    fn display_renders_every_event() {
        let t = sample();
        let text = t.to_string();
        assert!(text.contains("n1 requests CS"));
        assert!(text.contains("n1 -> n0 send REQUEST"));
        assert!(text.contains("n1 ENTERS CS"));
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn event_times() {
        let t = sample();
        let times: Vec<Time> = t.iter().map(TraceEvent::at).collect();
        assert_eq!(times, vec![Time(0), Time(0), Time(1), Time(2), Time(3)]);
    }

    #[test]
    fn into_iterator_for_ref() {
        let t = sample();
        let count = (&t).into_iter().count();
        assert_eq!(count, 5);
    }

    #[test]
    fn dropped_messages_render_distinctly() {
        let e = TraceEvent::Drop {
            at: Time(4),
            src: NodeId(0),
            dst: NodeId(1),
            kind: "PRIVILEGE",
        };
        assert_eq!(e.at(), Time(4));
        let text = e.to_string();
        assert!(text.contains("DROPPED PRIVILEGE"));
        assert!(text.contains("-x"));
    }
}
