//! Logical topologies and quorum systems for distributed mutual exclusion.
//!
//! The paper's algorithm (and Raymond's tree algorithm it improves on) runs
//! on a *logical* structure layered over a fully connected physical network.
//! The logical structure is a tree when edge directions are ignored; the
//! protocol's `NEXT` pointers orient the edges into a directed acyclic graph
//! with a single sink. This crate provides:
//!
//! * [`NodeId`] — a compact node identifier used across the workspace.
//! * [`Tree`] — an undirected tree with constructors for every topology the
//!   paper discusses (line, star/"centralized", radiating star, balanced
//!   k-ary trees, caterpillars, random trees) and graph metrics (diameter,
//!   paths, eccentricity).
//! * [`Orientation`] — edge directions toward a chosen sink, i.e. the
//!   initial `NEXT` assignment produced by the paper's Figure 5 `INIT`.
//! * [`quorum`] — Maekawa-style quorum systems (grid and finite projective
//!   plane constructions) used by the Maekawa baseline.
//!
//! # Examples
//!
//! ```
//! use dmx_topology::{NodeId, Tree};
//!
//! // The paper's optimal topology: one center, everyone else a leaf.
//! let star = Tree::star(8);
//! assert_eq!(star.diameter(), 2);
//!
//! // The paper's worst topology: a straight line.
//! let line = Tree::line(8);
//! assert_eq!(line.diameter(), 7);
//!
//! // Initial NEXT pointers when node 3 holds the token.
//! let orient = line.orient_toward(NodeId(3));
//! assert_eq!(orient.next_hop(NodeId(0)), Some(NodeId(1)));
//! assert_eq!(orient.next_hop(NodeId(3)), None); // the sink
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod node;
mod orientation;
pub mod placement;
pub mod quorum;
mod tree;

pub use node::NodeId;
pub use orientation::Orientation;
pub use tree::{Tree, TreeError};
