use std::fmt;

/// Identifier of a node in the logical structure.
///
/// Nodes are numbered `0..n` within a [`Tree`](crate::Tree). The paper
/// numbers nodes `1..=N` and uses `0` as the "no node" sentinel for the
/// `NEXT`/`FOLLOW` variables; this crate instead numbers from zero and uses
/// `Option<NodeId>` where the paper uses the sentinel, so the sentinel can
/// never be confused with a real node.
///
/// # Examples
///
/// ```
/// use dmx_topology::NodeId;
///
/// let a = NodeId(3);
/// assert_eq!(a.index(), 3);
/// assert_eq!(a.to_string(), "n3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize`, convenient for indexing vectors
    /// of per-node state.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::NodeId;
    /// let states = ["idle", "busy"];
    /// assert_eq!(states[NodeId(1).index()], "busy");
    /// ```
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a vector index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::NodeId;
    /// assert_eq!(NodeId::from_index(7), NodeId(7));
    /// ```
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(value: u32) -> Self {
        NodeId(value)
    }
}

impl From<NodeId> for u32 {
    fn from(value: NodeId) -> Self {
        value.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for i in [0usize, 1, 17, 65_535] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(0).to_string(), "n0");
        assert_eq!(NodeId(42).to_string(), "n42");
    }

    #[test]
    fn conversions() {
        assert_eq!(NodeId::from(9u32), NodeId(9));
        assert_eq!(u32::from(NodeId(9)), 9);
    }

    #[test]
    fn ordering_follows_numeric_order() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(5).max(NodeId(3)), NodeId(5));
    }
}
