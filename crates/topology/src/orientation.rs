use crate::node::NodeId;

/// Edge directions for a tree: every node except the single *sink* names
/// the neighbor on its path toward the sink.
///
/// This is exactly the quiescent shape of the paper's `NEXT` pointers —
/// "the NEXT variable is set to point to the neighbor which is on the path
/// to the node holding the token" (Chapter 3) — and is what the Figure 5
/// `INIT` flood computes. Protocols copy this into their mutable per-node
/// state at start-up.
///
/// # Examples
///
/// ```
/// use dmx_topology::{NodeId, Tree};
///
/// let tree = Tree::line(4);
/// let orient = tree.orient_toward(NodeId(2));
/// assert_eq!(orient.next_hop(NodeId(0)), Some(NodeId(1)));
/// assert_eq!(orient.next_hop(NodeId(3)), Some(NodeId(2)));
/// assert_eq!(orient.sink(), NodeId(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Orientation {
    next: Vec<Option<NodeId>>,
    sink: NodeId,
}

impl Orientation {
    pub(crate) fn new(next: Vec<Option<NodeId>>, sink: NodeId) -> Self {
        debug_assert_eq!(next[sink.index()], None);
        debug_assert_eq!(next.iter().filter(|n| n.is_none()).count(), 1);
        Orientation { next, sink }
    }

    /// The node all edges point toward (the initial token holder).
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert_eq!(Tree::star(3).orient_toward(NodeId(1)).sink(), NodeId(1));
    /// ```
    #[inline]
    pub fn sink(&self) -> NodeId {
        self.sink
    }

    /// The neighbor `v` points at, or `None` when `v` is the sink.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let o = Tree::line(3).orient_toward(NodeId(0));
    /// assert_eq!(o.next_hop(NodeId(2)), Some(NodeId(1)));
    /// ```
    #[inline]
    pub fn next_hop(&self, v: NodeId) -> Option<NodeId> {
        self.next[v.index()]
    }

    /// Number of nodes covered by the orientation.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert_eq!(Tree::star(6).orient_toward(NodeId(0)).len(), 6);
    /// ```
    #[inline]
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// `true` only for the trivial single-node orientation.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert!(!Tree::star(6).orient_toward(NodeId(0)).is_empty());
    /// ```
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.next.len() <= 1
    }

    /// The full `NEXT` vector, indexed by node.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let o = Tree::line(2).orient_toward(NodeId(1));
    /// assert_eq!(o.as_slice(), &[Some(NodeId(1)), None]);
    /// ```
    #[inline]
    pub fn as_slice(&self) -> &[Option<NodeId>] {
        &self.next
    }

    /// Walks pointers from `v` to the sink, returning the visited nodes
    /// including both `v` and the sink. This is the route a `REQUEST`
    /// initiated at `v` travels in a quiescent system.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let o = Tree::line(4).orient_toward(NodeId(3));
    /// assert_eq!(
    ///     o.walk_to_sink(NodeId(0)),
    ///     vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
    /// );
    /// ```
    pub fn walk_to_sink(&self, v: NodeId) -> Vec<NodeId> {
        let mut path = vec![v];
        let mut cur = v;
        while let Some(next) = self.next[cur.index()] {
            path.push(next);
            cur = next;
            assert!(
                path.len() <= self.next.len(),
                "orientation contains a cycle"
            );
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Tree;

    #[test]
    fn walk_reaches_sink_from_everywhere() {
        let t = Tree::kary(13, 3);
        let o = t.orient_toward(NodeId(5));
        for v in t.nodes() {
            let walk = o.walk_to_sink(v);
            assert_eq!(*walk.last().unwrap(), NodeId(5));
            assert!(walk.len() <= t.len());
        }
    }

    #[test]
    fn walk_length_matches_tree_distance() {
        let t = Tree::caterpillar(5, 2);
        let sink = NodeId(4);
        let o = t.orient_toward(sink);
        for v in t.nodes() {
            assert_eq!(o.walk_to_sink(v).len() - 1, t.distance(v, sink));
        }
    }

    #[test]
    fn exactly_one_sink() {
        let t = Tree::random(20, &mut rand::rngs::mock::StepRng::new(7, 13));
        let o = t.orient_toward(NodeId(11));
        let sinks = (0..o.len())
            .filter(|&i| o.next_hop(NodeId::from_index(i)).is_none())
            .count();
        assert_eq!(sinks, 1);
    }
}
