//! Topology optimization under non-uniform demand.
//!
//! Chapter 6.2 proves the star ("centralized topology") optimal assuming
//! every node is equally likely to hold and to request the token. Real
//! workloads are skewed, and because the token *parks* at its last user,
//! the steady-state cost of serving requester `r` after holder `h` is
//! `dist(r, h) + 1` messages (0 if `r = h`). This module computes that
//! expectation exactly for arbitrary trees and request-frequency weights
//! and finds the best star hub — extending the paper's analysis to the
//! weighted case (the `ext_hub` experiment validates the prediction
//! against simulation).

use crate::node::NodeId;
use crate::tree::Tree;

/// Exact expected messages per critical-section entry for the DAG
/// algorithm on `tree`, when consecutive critical-section users are
/// drawn independently with probability proportional to `weights`
/// (token-parking steady state).
///
/// # Panics
///
/// Panics if `weights.len() != tree.len()`, if any weight is negative,
/// or if all weights are zero.
///
/// # Examples
///
/// With uniform weights on a star this reduces to the paper's
/// `3 − 5/N + 2/N²`:
///
/// ```
/// use dmx_topology::{placement, Tree};
///
/// let n = 8;
/// let tree = Tree::star(n);
/// let uniform = vec![1.0; n];
/// let expected = placement::expected_messages_per_entry(&tree, &uniform);
/// let paper = 3.0 - 5.0 / n as f64 + 2.0 / (n * n) as f64;
/// assert!((expected - paper).abs() < 1e-12);
/// ```
pub fn expected_messages_per_entry(tree: &Tree, weights: &[f64]) -> f64 {
    assert_eq!(weights.len(), tree.len(), "one weight per node");
    assert!(
        weights.iter().all(|w| *w >= 0.0),
        "weights must be nonnegative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "at least one weight must be positive");

    let mut expected = 0.0;
    for h in tree.nodes() {
        let wh = weights[h.index()] / total;
        if wh == 0.0 {
            continue;
        }
        let dist = tree.distances_from(h);
        for r in tree.nodes() {
            if r == h {
                continue;
            }
            let wr = weights[r.index()] / total;
            expected += wh * wr * (dist[r.index()] as f64 + 1.0);
        }
    }
    expected
}

/// Builds the star over `n` nodes whose center is `hub` (the plain
/// [`Tree::star`] always centers node 0).
///
/// # Panics
///
/// Panics if `n == 0` or `hub` is out of range.
///
/// # Examples
///
/// ```
/// use dmx_topology::{placement, NodeId};
///
/// let star = placement::star_with_hub(5, NodeId(3));
/// assert_eq!(star.degree(NodeId(3)), 4);
/// assert_eq!(star.diameter(), 2);
/// ```
pub fn star_with_hub(n: usize, hub: NodeId) -> Tree {
    assert!(n > 0, "star needs at least one node");
    assert!(hub.index() < n, "hub out of range");
    let edges: Vec<(u32, u32)> = (0..n as u32)
        .filter(|&v| v != hub.0)
        .map(|v| (hub.0, v))
        .collect();
    Tree::from_edges(n, &edges).expect("star edges always form a tree")
}

/// The star hub minimizing [`expected_messages_per_entry`] for the given
/// request weights, with the achieved expectation. Ties break toward the
/// smaller node id.
///
/// For uniform weights every hub is equivalent (the paper's symmetric
/// case); for skewed demand the optimum moves — placing the hub at a hot
/// node converts its 3-message entries into 2-message ones.
///
/// # Panics
///
/// Same conditions as [`expected_messages_per_entry`].
///
/// # Examples
///
/// ```
/// use dmx_topology::{placement, NodeId};
///
/// // Node 2 makes 80% of the requests: as the hub, every transfer that
/// // involves it costs 2 messages instead of 3.
/// let weights = [0.05, 0.05, 0.80, 0.05, 0.05];
/// let (hub, cost) = placement::optimal_star_hub(&weights);
/// assert_eq!(hub, NodeId(2));
/// let cold_hub_cost = placement::expected_messages_per_entry(
///     &placement::star_with_hub(5, NodeId(0)),
///     &weights,
/// );
/// assert!(cost < cold_hub_cost);
/// ```
pub fn optimal_star_hub(weights: &[f64]) -> (NodeId, f64) {
    let n = weights.len();
    assert!(n > 0, "need at least one node");
    let mut best = (NodeId(0), f64::INFINITY);
    for hub in 0..n {
        let hub = NodeId::from_index(hub);
        let cost = expected_messages_per_entry(&star_with_hub(n, hub), weights);
        if cost < best.1 {
            best = (hub, cost);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_star_matches_paper_formula() {
        for n in [2usize, 3, 5, 16, 33] {
            let tree = Tree::star(n);
            let expected = expected_messages_per_entry(&tree, &vec![1.0; n]);
            let paper = 3.0 - 5.0 / n as f64 + 2.0 / (n * n) as f64;
            assert!((expected - paper).abs() < 1e-12, "n = {n}");
        }
    }

    #[test]
    fn weights_need_not_be_normalized() {
        let tree = Tree::line(4);
        let a = expected_messages_per_entry(&tree, &[1.0, 2.0, 3.0, 4.0]);
        let b = expected_messages_per_entry(&tree, &[10.0, 20.0, 30.0, 40.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_single_requester_costs_nothing() {
        // One node does all the requesting: the token parks there forever.
        let tree = Tree::line(5);
        let mut weights = vec![0.0; 5];
        weights[3] = 1.0;
        assert_eq!(expected_messages_per_entry(&tree, &weights), 0.0);
    }

    #[test]
    fn uniform_weights_make_all_hubs_equal() {
        let weights = vec![1.0; 6];
        let costs: Vec<f64> = (0..6)
            .map(|h| expected_messages_per_entry(&star_with_hub(6, NodeId(h)), &weights))
            .collect();
        for c in &costs {
            assert!((c - costs[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn two_hot_nodes_want_to_be_adjacent_to_each_other() {
        // Nodes 1 and 4 exchange the token constantly; the best hub is
        // one of them (making the exchange a single hop each way).
        let mut weights = vec![0.01; 6];
        weights[1] = 0.5;
        weights[4] = 0.5;
        let (hub, _) = optimal_star_hub(&weights);
        assert!(hub == NodeId(1) || hub == NodeId(4), "got {hub}");
    }

    #[test]
    fn star_beats_line_under_any_tested_weighting() {
        for weights in [vec![1.0; 7], {
            let mut w = vec![0.1; 7];
            w[6] = 5.0;
            w
        }] {
            let (_, star_cost) = optimal_star_hub(&weights);
            let line_cost = expected_messages_per_entry(&Tree::line(7), &weights);
            assert!(star_cost <= line_cost + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "one weight per node")]
    fn weight_length_is_validated() {
        expected_messages_per_entry(&Tree::line(3), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one weight must be positive")]
    fn all_zero_weights_are_rejected() {
        expected_messages_per_entry(&Tree::line(3), &[0.0, 0.0, 0.0]);
    }
}
