//! Maekawa-style quorum systems.
//!
//! Maekawa's algorithm (the √N baseline of Chapter 2.6) grants the critical
//! section when a node has locked every member of its *quorum* (the paper
//! calls them committees). Correctness requires that every two quorums
//! intersect and that each node belongs to its own quorum. The paper notes
//! the optimal construction is a finite projective plane, attainable when
//! `N = q² + q + 1`; a √N-sized *grid* construction works for every `N`.
//!
//! # Examples
//!
//! ```
//! use dmx_topology::quorum::QuorumSystem;
//!
//! let qs = QuorumSystem::for_size(13); // 13 = 3² + 3 + 1 -> projective plane
//! qs.verify().unwrap();
//! assert_eq!(qs.quorum(dmx_topology::NodeId(0)).len(), 4); // q + 1
//! ```

use std::fmt;

use crate::node::NodeId;

/// A quorum (committee) assignment: one member list per node.
///
/// Invariants checked by [`QuorumSystem::verify`]:
/// 1. every node appears in its own quorum;
/// 2. every pair of quorums has a nonempty intersection;
/// 3. member lists are sorted and duplicate-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuorumSystem {
    quorums: Vec<Vec<NodeId>>,
}

/// Violation found by [`QuorumSystem::verify`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuorumError {
    /// A node was missing from its own quorum.
    MissingSelf(NodeId),
    /// Two quorums failed to intersect.
    DisjointQuorums(NodeId, NodeId),
    /// A member list contained a duplicate or unsorted entry.
    MalformedMembers(NodeId),
    /// A member identifier was out of range.
    MemberOutOfRange(NodeId, NodeId),
}

impl fmt::Display for QuorumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuorumError::MissingSelf(n) => write!(f, "{n} is not in its own quorum"),
            QuorumError::DisjointQuorums(a, b) => {
                write!(f, "quorums of {a} and {b} do not intersect")
            }
            QuorumError::MalformedMembers(n) => {
                write!(f, "quorum of {n} is unsorted or has duplicates")
            }
            QuorumError::MemberOutOfRange(n, m) => {
                write!(f, "quorum of {n} names out-of-range member {m}")
            }
        }
    }
}

impl std::error::Error for QuorumError {}

impl QuorumSystem {
    /// Builds the √N *grid* quorum system over `n` nodes: nodes are laid
    /// out row-major on a `⌈n/cols⌉ × cols` grid (`cols = ⌈√n⌉`) and a
    /// node's quorum is its full row plus its full column (existing cells
    /// only). Any two quorums intersect at a shared row/column cell.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::quorum::QuorumSystem;
    /// let qs = QuorumSystem::grid(16);
    /// qs.verify().unwrap();
    /// assert_eq!(qs.quorum(dmx_topology::NodeId(5)).len(), 7); // row(4) + col(4) - self
    /// ```
    pub fn grid(n: usize) -> Self {
        assert!(n > 0, "quorum system needs at least one node");
        let cols = (n as f64).sqrt().ceil() as usize;
        let mut quorums = Vec::with_capacity(n);
        for i in 0..n {
            let (r, c) = (i / cols, i % cols);
            let mut members = Vec::new();
            // Full row.
            for cc in 0..cols {
                let j = r * cols + cc;
                if j < n {
                    members.push(NodeId::from_index(j));
                }
            }
            // Full column.
            for rr in 0.. {
                let j = rr * cols + c;
                if j >= n {
                    break;
                }
                if rr != r {
                    members.push(NodeId::from_index(j));
                }
            }
            members.sort_unstable();
            members.dedup();
            quorums.push(members);
        }
        QuorumSystem { quorums }
    }

    /// Builds the finite-projective-plane quorum system of prime order `q`
    /// over `N = q² + q + 1` nodes; every quorum has exactly `q + 1`
    /// members, the optimum Maekawa identified.
    ///
    /// Points of PG(2, q) are identified with nodes; each node is assigned
    /// a distinct line passing through its own point (a perfect matching on
    /// the point–line incidence graph, which always exists because the
    /// graph is `(q+1)`-regular bipartite).
    ///
    /// Returns `None` if `q < 2` or `q` is not prime (the construction here
    /// uses arithmetic mod `q`, so prime powers other than primes are not
    /// supported).
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::quorum::QuorumSystem;
    /// let qs = QuorumSystem::projective_plane(3).unwrap(); // N = 13
    /// qs.verify().unwrap();
    /// assert!(qs.quorums().iter().all(|m| m.len() == 4));
    /// ```
    pub fn projective_plane(q: u32) -> Option<Self> {
        if q < 2 || !is_prime(q) {
            return None;
        }
        let q = q as u64;
        let n = (q * q + q + 1) as usize;
        // Normalized homogeneous coordinates: (1,a,b), (0,1,b), (0,0,1).
        let mut coords: Vec<[u64; 3]> = Vec::with_capacity(n);
        for a in 0..q {
            for b in 0..q {
                coords.push([1, a, b]);
            }
        }
        for b in 0..q {
            coords.push([0, 1, b]);
        }
        coords.push([0, 0, 1]);
        debug_assert_eq!(coords.len(), n);

        // Lines use the same normalized triples as coefficients; a point p
        // lies on line l iff l·p ≡ 0 (mod q).
        let on_line = |l: &[u64; 3], p: &[u64; 3]| {
            (l[0] * p[0] + l[1] * p[1] + l[2] * p[2]).is_multiple_of(q)
        };
        let lines: Vec<Vec<usize>> = coords
            .iter()
            .map(|l| {
                (0..n)
                    .filter(|&pi| on_line(l, &coords[pi]))
                    .collect::<Vec<_>>()
            })
            .collect();
        debug_assert!(lines.iter().all(|pts| pts.len() == (q + 1) as usize));

        // Perfect matching: assign each point a distinct line through it.
        let line_of_point = match_points_to_lines(n, &lines)?;

        let mut quorums = Vec::with_capacity(n);
        for p in 0..n {
            let mut members: Vec<NodeId> = lines[line_of_point[p]]
                .iter()
                .map(|&pt| NodeId::from_index(pt))
                .collect();
            members.sort_unstable();
            quorums.push(members);
        }
        Some(QuorumSystem { quorums })
    }

    /// Picks the best available construction for `n` nodes: the projective
    /// plane when `n = q² + q + 1` for a prime `q`, the grid otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::quorum::QuorumSystem;
    /// QuorumSystem::for_size(7).verify().unwrap();   // plane of order 2
    /// QuorumSystem::for_size(10).verify().unwrap();  // grid fallback
    /// ```
    pub fn for_size(n: usize) -> Self {
        assert!(n > 0, "quorum system needs at least one node");
        for q in 2u32.. {
            let plane_n = (q as usize) * (q as usize) + q as usize + 1;
            if plane_n == n {
                if let Some(qs) = QuorumSystem::projective_plane(q) {
                    return qs;
                }
                break;
            }
            if plane_n > n {
                break;
            }
        }
        QuorumSystem::grid(n)
    }

    /// Number of nodes (and quorums).
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::quorum::QuorumSystem;
    /// assert_eq!(QuorumSystem::grid(9).len(), 9);
    /// ```
    #[inline]
    pub fn len(&self) -> usize {
        self.quorums.len()
    }

    /// `true` only for the degenerate one-node system.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::quorum::QuorumSystem;
    /// assert!(QuorumSystem::grid(1).is_empty());
    /// ```
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.quorums.len() <= 1
    }

    /// The quorum (sorted member list, including `v` itself) of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, quorum::QuorumSystem};
    /// let qs = QuorumSystem::grid(4);
    /// assert!(qs.quorum(NodeId(2)).contains(&NodeId(2)));
    /// ```
    #[inline]
    pub fn quorum(&self, v: NodeId) -> &[NodeId] {
        &self.quorums[v.index()]
    }

    /// All quorums, indexed by node.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::quorum::QuorumSystem;
    /// assert_eq!(QuorumSystem::grid(6).quorums().len(), 6);
    /// ```
    #[inline]
    pub fn quorums(&self) -> &[Vec<NodeId>] {
        &self.quorums
    }

    /// Mean quorum size; Maekawa's message complexity is `c · K` for
    /// quorums of size `K ≈ √N`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::quorum::QuorumSystem;
    /// let qs = QuorumSystem::projective_plane(2).unwrap();
    /// assert!((qs.mean_size() - 3.0).abs() < 1e-9);
    /// ```
    pub fn mean_size(&self) -> f64 {
        let total: usize = self.quorums.iter().map(Vec::len).sum();
        total as f64 / self.quorums.len() as f64
    }

    /// Largest quorum size.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::quorum::QuorumSystem;
    /// assert_eq!(QuorumSystem::projective_plane(2).unwrap().max_size(), 3);
    /// ```
    pub fn max_size(&self) -> usize {
        self.quorums.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Checks the Maekawa invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant: a node missing from its own
    /// quorum, a disjoint quorum pair, a malformed member list, or an
    /// out-of-range member.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::quorum::QuorumSystem;
    /// QuorumSystem::grid(12).verify().unwrap();
    /// ```
    pub fn verify(&self) -> Result<(), QuorumError> {
        let n = self.quorums.len();
        for (i, members) in self.quorums.iter().enumerate() {
            let me = NodeId::from_index(i);
            if !members.windows(2).all(|w| w[0] < w[1]) {
                return Err(QuorumError::MalformedMembers(me));
            }
            if let Some(&m) = members.iter().find(|m| m.index() >= n) {
                return Err(QuorumError::MemberOutOfRange(me, m));
            }
            if members.binary_search(&me).is_err() {
                return Err(QuorumError::MissingSelf(me));
            }
        }
        for i in 0..n {
            for j in (i + 1)..n {
                if !intersects(&self.quorums[i], &self.quorums[j]) {
                    return Err(QuorumError::DisjointQuorums(
                        NodeId::from_index(i),
                        NodeId::from_index(j),
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Sorted-list intersection test.
fn intersects(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Bipartite matching (points -> lines through them) by augmenting paths.
/// Returns `line_of_point` or `None` if no perfect matching exists.
fn match_points_to_lines(n: usize, lines: &[Vec<usize>]) -> Option<Vec<usize>> {
    // lines_of_point[p] = lines containing p.
    let mut lines_of_point = vec![Vec::new(); n];
    for (li, pts) in lines.iter().enumerate() {
        for &p in pts {
            lines_of_point[p].push(li);
        }
    }
    let mut point_of_line: Vec<Option<usize>> = vec![None; n];
    let mut line_of_point: Vec<Option<usize>> = vec![None; n];

    fn augment(
        p: usize,
        lines_of_point: &[Vec<usize>],
        point_of_line: &mut [Option<usize>],
        line_of_point: &mut [Option<usize>],
        visited: &mut [bool],
    ) -> bool {
        for &l in &lines_of_point[p] {
            if visited[l] {
                continue;
            }
            visited[l] = true;
            let free = match point_of_line[l] {
                None => true,
                Some(other) => {
                    augment(other, lines_of_point, point_of_line, line_of_point, visited)
                }
            };
            if free {
                point_of_line[l] = Some(p);
                line_of_point[p] = Some(l);
                return true;
            }
        }
        false
    }

    for p in 0..n {
        let mut visited = vec![false; n];
        if !augment(
            p,
            &lines_of_point,
            &mut point_of_line,
            &mut line_of_point,
            &mut visited,
        ) {
            return None;
        }
    }
    line_of_point.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_valid_for_many_sizes() {
        for n in 1..=60 {
            let qs = QuorumSystem::grid(n);
            qs.verify().unwrap_or_else(|e| panic!("grid({n}): {e}"));
        }
    }

    #[test]
    fn grid_size_scales_as_sqrt() {
        let qs = QuorumSystem::grid(100);
        // Row (10) + column (10) - self.
        assert_eq!(qs.max_size(), 19);
        assert!(qs.mean_size() < 20.0);
    }

    #[test]
    fn plane_exists_for_small_primes() {
        for q in [2u32, 3, 5, 7] {
            let n = (q * q + q + 1) as usize;
            let qs = QuorumSystem::projective_plane(q).unwrap();
            assert_eq!(qs.len(), n);
            qs.verify().unwrap_or_else(|e| panic!("plane({q}): {e}"));
            assert!(qs.quorums().iter().all(|m| m.len() == (q + 1) as usize));
        }
    }

    #[test]
    fn plane_rejects_non_primes() {
        assert!(QuorumSystem::projective_plane(1).is_none());
        assert!(QuorumSystem::projective_plane(4).is_none());
        assert!(QuorumSystem::projective_plane(6).is_none());
    }

    #[test]
    fn plane_pairwise_intersections_are_exactly_one() {
        let qs = QuorumSystem::projective_plane(3).unwrap();
        for i in 0..qs.len() {
            for j in (i + 1)..qs.len() {
                let a = &qs.quorums()[i];
                let b = &qs.quorums()[j];
                let common = a.iter().filter(|m| b.contains(m)).count();
                // Distinct lines meet in exactly one point; two nodes may
                // share a line, in which case the quorums are identical in
                // no case (matching gives distinct lines), so always 1.
                assert_eq!(common, 1, "quorums {i} and {j}");
            }
        }
    }

    #[test]
    fn for_size_prefers_plane() {
        // 7 = 2² + 2 + 1.
        let qs = QuorumSystem::for_size(7);
        assert_eq!(qs.max_size(), 3);
        // 12 has no plane; grid gives bigger quorums.
        let qs = QuorumSystem::for_size(12);
        assert!(qs.max_size() > 4);
        qs.verify().unwrap();
    }

    #[test]
    fn single_node_quorum() {
        let qs = QuorumSystem::grid(1);
        assert!(qs.is_empty());
        assert_eq!(qs.quorum(NodeId(0)), &[NodeId(0)]);
        qs.verify().unwrap();
    }

    #[test]
    fn error_display() {
        let e = QuorumError::DisjointQuorums(NodeId(1), NodeId(2));
        assert!(e.to_string().contains("do not intersect"));
    }

    #[test]
    fn verify_catches_missing_self() {
        let mut qs = QuorumSystem::grid(4);
        qs.quorums[0].retain(|&m| m != NodeId(0));
        assert_eq!(qs.verify(), Err(QuorumError::MissingSelf(NodeId(0))));
    }

    #[test]
    fn verify_catches_disjoint() {
        let qs = QuorumSystem {
            quorums: vec![vec![NodeId(0)], vec![NodeId(1)]],
        };
        assert_eq!(
            qs.verify(),
            Err(QuorumError::DisjointQuorums(NodeId(0), NodeId(1)))
        );
    }
}
