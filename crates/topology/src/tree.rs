use std::collections::VecDeque;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::node::NodeId;
use crate::orientation::Orientation;

/// An undirected tree over nodes `0..n`.
///
/// This is the *logical* structure the paper layers over the fully
/// connected physical network: "we further impose that the structure of the
/// graph is acyclic even without considering the directions of the edges"
/// (Chapter 3), which together with connectivity makes the undirected
/// skeleton a tree. Directions (the `NEXT` pointers) live in the protocol
/// state, not here; [`Tree::orient_toward`] produces the initial
/// orientation.
///
/// # Examples
///
/// ```
/// use dmx_topology::{NodeId, Tree};
///
/// let tree = Tree::from_edges(4, &[(0, 1), (1, 2), (1, 3)])?;
/// assert_eq!(tree.len(), 4);
/// assert_eq!(tree.degree(NodeId(1)), 3);
/// assert_eq!(tree.diameter(), 2);
/// # Ok::<(), dmx_topology::TreeError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    /// Adjacency lists; `adj[v]` is sorted ascending.
    adj: Vec<Vec<NodeId>>,
}

/// Error returned when a set of edges does not describe a tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeError {
    /// The node count was zero.
    Empty,
    /// An edge mentioned a node `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes in the tree.
        len: usize,
    },
    /// An edge connected a node to itself.
    SelfLoop(NodeId),
    /// The same undirected edge appeared twice.
    DuplicateEdge(NodeId, NodeId),
    /// A tree over `n` nodes needs exactly `n - 1` edges.
    WrongEdgeCount {
        /// Edges supplied.
        got: usize,
        /// Edges required (`n - 1`).
        want: usize,
    },
    /// The edges were acyclic but did not connect all nodes.
    Disconnected,
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::Empty => write!(f, "tree must contain at least one node"),
            TreeError::NodeOutOfRange { node, len } => {
                write!(f, "edge endpoint {node} out of range for {len} nodes")
            }
            TreeError::SelfLoop(n) => write!(f, "self loop at {n}"),
            TreeError::DuplicateEdge(a, b) => write!(f, "duplicate edge {a}-{b}"),
            TreeError::WrongEdgeCount { got, want } => {
                write!(f, "tree needs exactly {want} edges, got {got}")
            }
            TreeError::Disconnected => write!(f, "edges do not connect all nodes"),
        }
    }
}

impl std::error::Error for TreeError {}

impl Tree {
    /// Builds a tree from an explicit edge list.
    ///
    /// # Errors
    ///
    /// Returns a [`TreeError`] if the edges do not form a connected acyclic
    /// graph over exactly `n` nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::Tree;
    ///
    /// let t = Tree::from_edges(3, &[(0, 1), (1, 2)])?;
    /// assert_eq!(t.diameter(), 2);
    /// assert!(Tree::from_edges(3, &[(0, 1), (0, 1)]).is_err());
    /// # Ok::<(), dmx_topology::TreeError>(())
    /// ```
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, TreeError> {
        if n == 0 {
            return Err(TreeError::Empty);
        }
        if edges.len() != n - 1 {
            return Err(TreeError::WrongEdgeCount {
                got: edges.len(),
                want: n - 1,
            });
        }
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            let (a, b) = (NodeId(a), NodeId(b));
            for node in [a, b] {
                if node.index() >= n {
                    return Err(TreeError::NodeOutOfRange { node, len: n });
                }
            }
            if a == b {
                return Err(TreeError::SelfLoop(a));
            }
            if adj[a.index()].contains(&b) {
                return Err(TreeError::DuplicateEdge(a, b));
            }
            adj[a.index()].push(b);
            adj[b.index()].push(a);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let tree = Tree { adj };
        // n-1 distinct edges + full connectivity implies acyclicity.
        if tree.reachable_from(NodeId(0)) != n {
            return Err(TreeError::Disconnected);
        }
        Ok(tree)
    }

    /// A straight line `0 - 1 - 2 - … - (n-1)`.
    ///
    /// The paper's *worst* topology: the upper bound on messages per entry
    /// degenerates to `N` (Chapter 6.1).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::Tree;
    /// assert_eq!(Tree::line(5).diameter(), 4);
    /// ```
    pub fn line(n: usize) -> Self {
        assert!(n > 0, "line topology needs at least one node");
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
        Tree::from_edges(n, &edges).expect("line edges always form a tree")
    }

    /// The paper's *centralized* (optimal) topology: node `0` in the center,
    /// all other nodes leaves (Figure 8). Diameter 2, upper bound 3.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::{NodeId, Tree};
    /// let star = Tree::star(6);
    /// assert_eq!(star.degree(NodeId(0)), 5);
    /// assert_eq!(star.diameter(), 2);
    /// ```
    pub fn star(n: usize) -> Self {
        assert!(n > 0, "star topology needs at least one node");
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
        Tree::from_edges(n, &edges).expect("star edges always form a tree")
    }

    /// A *radiating star*: `arms` paths of length `arm_len` joined at a
    /// central node. Raymond's paper suggested this shape as optimal; the
    /// thesis shows the plain star ([`Tree::star`]) beats it.
    ///
    /// Total node count is `1 + arms * arm_len`.
    ///
    /// # Panics
    ///
    /// Panics if `arms == 0` or `arm_len == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::Tree;
    /// let rs = Tree::radiating_star(3, 2); // 7 nodes, diameter 4
    /// assert_eq!(rs.len(), 7);
    /// assert_eq!(rs.diameter(), 4);
    /// ```
    pub fn radiating_star(arms: usize, arm_len: usize) -> Self {
        assert!(arms > 0, "radiating star needs at least one arm");
        assert!(arm_len > 0, "radiating star arms need at least one node");
        let n = 1 + arms * arm_len;
        let mut edges = Vec::with_capacity(n - 1);
        let mut next = 1u32;
        for _ in 0..arms {
            let mut prev = 0u32;
            for _ in 0..arm_len {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
        }
        Tree::from_edges(n, &edges).expect("radiating star edges always form a tree")
    }

    /// A balanced `k`-ary tree over `n` nodes (heap-style numbering: the
    /// children of node `i` are `k*i + 1 ..= k*i + k`).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `k == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::{NodeId, Tree};
    /// let t = Tree::kary(7, 2); // perfect binary tree of depth 2
    /// assert_eq!(t.degree(NodeId(0)), 2);
    /// assert_eq!(t.diameter(), 4);
    /// ```
    pub fn kary(n: usize, k: usize) -> Self {
        assert!(n > 0, "k-ary tree needs at least one node");
        assert!(k > 0, "k-ary tree needs arity at least one");
        let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| ((i - 1) / k as u32, i)).collect();
        Tree::from_edges(n, &edges).expect("k-ary edges always form a tree")
    }

    /// A caterpillar: a spine line of `spine` nodes, each spine node also
    /// carrying `legs` leaf nodes. Exercises mixed-degree topologies.
    ///
    /// Total node count is `spine * (1 + legs)`.
    ///
    /// # Panics
    ///
    /// Panics if `spine == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::Tree;
    /// let cat = Tree::caterpillar(3, 2);
    /// assert_eq!(cat.len(), 9);
    /// assert_eq!(cat.diameter(), 4); // leg-spine-spine-spine-leg
    /// ```
    pub fn caterpillar(spine: usize, legs: usize) -> Self {
        assert!(spine > 0, "caterpillar needs at least one spine node");
        let n = spine * (1 + legs);
        let mut edges = Vec::with_capacity(n - 1);
        for s in 1..spine as u32 {
            edges.push((s - 1, s));
        }
        let mut next = spine as u32;
        for s in 0..spine as u32 {
            for _ in 0..legs {
                edges.push((s, next));
                next += 1;
            }
        }
        Tree::from_edges(n, &edges).expect("caterpillar edges always form a tree")
    }

    /// A uniformly random labelled tree over `n` nodes, drawn via a random
    /// Prüfer sequence.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::Tree;
    /// use rand::{rngs::StdRng, SeedableRng};
    ///
    /// let mut rng = StdRng::seed_from_u64(7);
    /// let t = Tree::random(10, &mut rng);
    /// assert_eq!(t.len(), 10);
    /// ```
    pub fn random<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n > 0, "random tree needs at least one node");
        if n == 1 {
            return Tree {
                adj: vec![Vec::new()],
            };
        }
        if n == 2 {
            return Tree::from_edges(2, &[(0, 1)]).expect("two-node tree");
        }
        let prufer: Vec<u32> = (0..n - 2).map(|_| rng.gen_range(0..n as u32)).collect();
        Tree::from_prufer(&prufer)
    }

    /// Reconstructs the tree encoded by a Prüfer sequence of length `n - 2`
    /// (so `n = prufer.len() + 2` nodes).
    ///
    /// # Panics
    ///
    /// Panics if any entry is `>= n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dmx_topology::Tree;
    /// // The sequence [1, 1] encodes the star centered on node 1 over 4 nodes.
    /// let t = Tree::from_prufer(&[1, 1]);
    /// assert_eq!(t.degree(dmx_topology::NodeId(1)), 3);
    /// ```
    pub fn from_prufer(prufer: &[u32]) -> Self {
        let n = prufer.len() + 2;
        let mut degree = vec![1u32; n];
        for &p in prufer {
            assert!((p as usize) < n, "prufer entry out of range");
            degree[p as usize] += 1;
        }
        let mut edges = Vec::with_capacity(n - 1);
        // Min-heap of current leaves.
        let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<u32>> = (0..n as u32)
            .filter(|&v| degree[v as usize] == 1)
            .map(std::cmp::Reverse)
            .collect();
        for &p in prufer {
            let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer decoding invariant");
            edges.push((leaf, p));
            degree[p as usize] -= 1;
            if degree[p as usize] == 1 {
                leaves.push(std::cmp::Reverse(p));
            }
        }
        let std::cmp::Reverse(a) = leaves.pop().expect("two leaves remain");
        let std::cmp::Reverse(b) = leaves.pop().expect("two leaves remain");
        edges.push((a, b));
        Tree::from_edges(n, &edges).expect("prufer decoding always yields a tree")
    }

    /// Number of nodes.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// assert_eq!(Tree::star(5).len(), 5);
    /// ```
    #[inline]
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Returns `true` if the tree has exactly one node (it can never have
    /// zero).
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// assert!(!Tree::line(2).is_empty());
    /// ```
    #[inline]
    pub fn is_empty(&self) -> bool {
        // A `Tree` always has >= 1 node; this mirrors the std convention of
        // pairing `len` with `is_empty` and is `true` only for the
        // single-node tree which has no edges.
        self.adj.len() <= 1
    }

    /// Iterates over all node identifiers `0..n`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// let ids: Vec<_> = Tree::line(3).nodes().collect();
    /// assert_eq!(ids.len(), 3);
    /// ```
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId::from_index)
    }

    /// The neighbors of `v`, sorted ascending.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let star = Tree::star(4);
    /// assert_eq!(star.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
    /// ```
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adj[v.index()]
    }

    /// The degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert_eq!(Tree::line(3).degree(NodeId(1)), 2);
    /// ```
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.index()].len()
    }

    /// Returns `true` if `a` and `b` share an edge.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let line = Tree::line(3);
    /// assert!(line.has_edge(NodeId(0), NodeId(1)));
    /// assert!(!line.has_edge(NodeId(0), NodeId(2)));
    /// ```
    pub fn has_edge(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.len() && self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// All edges as `(low, high)` pairs, lexicographically sorted.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// assert_eq!(Tree::line(3).edges(), vec![(dmx_topology::NodeId(0), dmx_topology::NodeId(1)), (dmx_topology::NodeId(1), dmx_topology::NodeId(2))]);
    /// ```
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(self.len().saturating_sub(1));
        for v in self.nodes() {
            for &w in self.neighbors(v) {
                if v < w {
                    out.push((v, w));
                }
            }
        }
        out
    }

    /// Breadth-first distances from `src` to every node, in edges.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let d = Tree::line(4).distances_from(NodeId(0));
    /// assert_eq!(d, vec![0, 1, 2, 3]);
    /// ```
    pub fn distances_from(&self, src: NodeId) -> Vec<usize> {
        let mut dist = vec![usize::MAX; self.len()];
        dist[src.index()] = 0;
        let mut queue = VecDeque::from([src]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w.index()] == usize::MAX {
                    dist[w.index()] = dist[v.index()] + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// The unique simple path from `a` to `b`, inclusive of both endpoints.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let p = Tree::line(4).path(NodeId(0), NodeId(3));
    /// assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
    /// ```
    pub fn path(&self, a: NodeId, b: NodeId) -> Vec<NodeId> {
        let mut parent: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        seen[a.index()] = true;
        let mut queue = VecDeque::from([a]);
        while let Some(v) = queue.pop_front() {
            if v == b {
                break;
            }
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        let mut path = vec![b];
        let mut cur = b;
        while let Some(p) = parent[cur.index()] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        debug_assert_eq!(path.first(), Some(&a));
        path
    }

    /// Graph distance between two nodes, in edges.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert_eq!(Tree::star(5).distance(NodeId(1), NodeId(2)), 2);
    /// ```
    pub fn distance(&self, a: NodeId, b: NodeId) -> usize {
        self.path(a, b).len() - 1
    }

    /// The eccentricity of `v`: its distance to the farthest node.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert_eq!(Tree::line(5).eccentricity(NodeId(2)), 2);
    /// ```
    pub fn eccentricity(&self, v: NodeId) -> usize {
        *self
            .distances_from(v)
            .iter()
            .max()
            .expect("tree is nonempty")
    }

    /// The diameter: the length of the longest simple path, in edges. The
    /// paper defines performance bounds in terms of this quantity `D`.
    ///
    /// Computed with the classic double-BFS trick, which is exact on trees.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// assert_eq!(Tree::star(10).diameter(), 2);
    /// assert_eq!(Tree::line(10).diameter(), 9);
    /// assert_eq!(Tree::line(1).diameter(), 0);
    /// ```
    pub fn diameter(&self) -> usize {
        let d0 = self.distances_from(NodeId(0));
        let far = NodeId::from_index(
            d0.iter()
                .enumerate()
                .max_by_key(|(_, d)| **d)
                .map(|(i, _)| i)
                .expect("nonempty"),
        );
        self.eccentricity(far)
    }

    /// A center of the tree (a node of minimum eccentricity). Ties broken
    /// toward the smaller identifier.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// assert_eq!(Tree::line(5).center(), NodeId(2));
    /// assert_eq!(Tree::star(9).center(), NodeId(0));
    /// ```
    pub fn center(&self) -> NodeId {
        self.nodes()
            .min_by_key(|&v| (self.eccentricity(v), v))
            .expect("tree is nonempty")
    }

    /// Orients every edge toward `sink`, yielding the initial `NEXT`
    /// assignment of the paper's Figure 5 `INIT` procedure: each non-sink
    /// node's pointer names its neighbor on the unique path to `sink`.
    ///
    /// # Panics
    ///
    /// Panics if `sink` is out of range.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::{NodeId, Tree};
    /// let o = Tree::star(4).orient_toward(NodeId(2));
    /// assert_eq!(o.next_hop(NodeId(0)), Some(NodeId(2)));
    /// assert_eq!(o.next_hop(NodeId(1)), Some(NodeId(0)));
    /// assert_eq!(o.next_hop(NodeId(2)), None);
    /// ```
    pub fn orient_toward(&self, sink: NodeId) -> Orientation {
        let mut next: Vec<Option<NodeId>> = vec![None; self.len()];
        let mut seen = vec![false; self.len()];
        seen[sink.index()] = true;
        let mut queue = VecDeque::from([sink]);
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    next[w.index()] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        Orientation::new(next, sink)
    }

    /// A uniformly random node identifier.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let v = Tree::star(5).random_node(&mut rng);
    /// assert!(v.index() < 5);
    /// ```
    pub fn random_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        NodeId::from_index(rng.gen_range(0..self.len()))
    }

    /// A random permutation of all node identifiers; handy for workloads.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_topology::Tree;
    /// # use rand::{rngs::StdRng, SeedableRng};
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let p = Tree::line(6).shuffled_nodes(&mut rng);
    /// assert_eq!(p.len(), 6);
    /// ```
    pub fn shuffled_nodes<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.nodes().collect();
        ids.shuffle(rng);
        ids
    }

    fn reachable_from(&self, src: NodeId) -> usize {
        let mut seen = vec![false; self.len()];
        seen[src.index()] = true;
        let mut queue = VecDeque::from([src]);
        let mut count = 1;
        while let Some(v) = queue.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    count += 1;
                    queue.push_back(w);
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_edges_accepts_valid_tree() {
        let t = Tree::from_edges(5, &[(0, 1), (1, 2), (1, 3), (3, 4)]).unwrap();
        assert_eq!(t.len(), 5);
        assert!(t.has_edge(NodeId(1), NodeId(3)));
        assert!(!t.has_edge(NodeId(0), NodeId(4)));
    }

    #[test]
    fn from_edges_rejects_empty() {
        assert_eq!(Tree::from_edges(0, &[]), Err(TreeError::Empty));
    }

    #[test]
    fn from_edges_rejects_wrong_count() {
        assert_eq!(
            Tree::from_edges(3, &[(0, 1)]),
            Err(TreeError::WrongEdgeCount { got: 1, want: 2 })
        );
    }

    #[test]
    fn from_edges_rejects_out_of_range() {
        assert_eq!(
            Tree::from_edges(2, &[(0, 5)]),
            Err(TreeError::NodeOutOfRange {
                node: NodeId(5),
                len: 2
            })
        );
    }

    #[test]
    fn from_edges_rejects_self_loop() {
        assert_eq!(
            Tree::from_edges(2, &[(1, 1)]),
            Err(TreeError::SelfLoop(NodeId(1)))
        );
    }

    #[test]
    fn from_edges_rejects_duplicate_edge() {
        assert_eq!(
            Tree::from_edges(3, &[(0, 1), (1, 0)]),
            Err(TreeError::DuplicateEdge(NodeId(1), NodeId(0)))
        );
    }

    #[test]
    fn from_edges_rejects_cycle_as_disconnected() {
        // 3 edges over 4 nodes with a cycle leaves node 3 unreachable.
        assert_eq!(
            Tree::from_edges(4, &[(0, 1), (1, 2), (2, 0)]),
            Err(TreeError::Disconnected)
        );
    }

    #[test]
    fn single_node_tree() {
        let t = Tree::from_edges(1, &[]).unwrap();
        assert_eq!(t.len(), 1);
        assert!(t.is_empty());
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.center(), NodeId(0));
    }

    #[test]
    fn line_shape() {
        let t = Tree::line(6);
        assert_eq!(t.diameter(), 5);
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.degree(NodeId(3)), 2);
        assert_eq!(t.center(), NodeId(2));
    }

    #[test]
    fn star_shape() {
        let t = Tree::star(7);
        assert_eq!(t.diameter(), 2);
        assert_eq!(t.degree(NodeId(0)), 6);
        for i in 1..7 {
            assert_eq!(t.degree(NodeId(i)), 1);
        }
        assert_eq!(t.center(), NodeId(0));
    }

    #[test]
    fn radiating_star_shape() {
        let t = Tree::radiating_star(4, 3);
        assert_eq!(t.len(), 13);
        assert_eq!(t.diameter(), 6);
        assert_eq!(t.degree(NodeId(0)), 4);
    }

    #[test]
    fn kary_shape() {
        let t = Tree::kary(15, 2);
        assert_eq!(t.diameter(), 6);
        assert_eq!(t.degree(NodeId(0)), 2);
        let t3 = Tree::kary(13, 3);
        assert_eq!(t3.degree(NodeId(0)), 3);
    }

    #[test]
    fn caterpillar_shape() {
        let t = Tree::caterpillar(4, 1);
        assert_eq!(t.len(), 8);
        // leg - s0 - s1 - s2 - s3 - leg
        assert_eq!(t.diameter(), 5);
    }

    #[test]
    fn path_and_distance_agree() {
        let t = Tree::kary(15, 2);
        for a in t.nodes() {
            let dists = t.distances_from(a);
            for b in t.nodes() {
                assert_eq!(t.distance(a, b), dists[b.index()]);
                let p = t.path(a, b);
                assert_eq!(p.first(), Some(&a));
                assert_eq!(p.last(), Some(&b));
                // Consecutive path entries are adjacent.
                for w in p.windows(2) {
                    assert!(t.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn prufer_star_round_trip() {
        let t = Tree::from_prufer(&[2, 2, 2]);
        assert_eq!(t.len(), 5);
        assert_eq!(t.degree(NodeId(2)), 4);
    }

    #[test]
    fn random_trees_are_valid_and_deterministic() {
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for n in [1usize, 2, 3, 10, 37] {
            let a = Tree::random(n, &mut r1);
            let b = Tree::random(n, &mut r2);
            assert_eq!(a, b, "same seed must give the same tree");
            assert_eq!(a.len(), n);
            assert_eq!(a.edges().len(), n - 1);
        }
    }

    #[test]
    fn orientation_points_along_paths() {
        let t = Tree::kary(10, 3);
        for sink in t.nodes() {
            let o = t.orient_toward(sink);
            assert_eq!(o.sink(), sink);
            for v in t.nodes() {
                if v == sink {
                    assert_eq!(o.next_hop(v), None);
                } else {
                    let hop = o.next_hop(v).unwrap();
                    // The hop must be the second node on the path to the sink.
                    assert_eq!(hop, t.path(v, sink)[1]);
                }
            }
        }
    }

    #[test]
    fn diameter_matches_brute_force_on_random_trees() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let t = Tree::random(rng.gen_range(2..30), &mut rng);
            let brute = t.nodes().map(|v| t.eccentricity(v)).max().unwrap();
            assert_eq!(t.diameter(), brute);
        }
    }

    #[test]
    fn edges_are_sorted_and_complete() {
        let t = Tree::caterpillar(3, 2);
        let e = t.edges();
        assert_eq!(e.len(), t.len() - 1);
        let mut sorted = e.clone();
        sorted.sort();
        assert_eq!(e, sorted);
    }

    #[test]
    fn display_of_errors() {
        let msg = TreeError::WrongEdgeCount { got: 1, want: 2 }.to_string();
        assert!(msg.contains("exactly 2"));
        assert!(!TreeError::Disconnected.to_string().is_empty());
    }
}
