//! Property-based tests of the tree and quorum substrates.

use dmx_topology::quorum::QuorumSystem;
use dmx_topology::{NodeId, Tree};
use proptest::prelude::*;

fn arb_tree() -> impl Strategy<Value = Tree> {
    (2usize..=24).prop_flat_map(|n| {
        if n == 2 {
            Just(Tree::line(2)).boxed()
        } else {
            proptest::collection::vec(0u32..n as u32, n - 2)
                .prop_map(|p| Tree::from_prufer(&p))
                .boxed()
        }
    })
}

proptest! {
    /// A decoded Prüfer sequence always yields a valid tree: n nodes,
    /// n-1 edges, connected (checked by from_edges inside), and the
    /// degree of node v equals its Prüfer multiplicity + 1.
    #[test]
    fn prufer_decoding_degree_law(prufer in proptest::collection::vec(0u32..10, 8)) {
        let tree = Tree::from_prufer(&prufer); // n = 10
        prop_assert_eq!(tree.len(), 10);
        for v in tree.nodes() {
            let multiplicity = prufer.iter().filter(|&&p| p == v.0).count();
            prop_assert_eq!(tree.degree(v), multiplicity + 1);
        }
    }

    /// Path endpoints, symmetry, and the triangle equality through the
    /// unique tree path.
    #[test]
    fn distances_are_a_tree_metric(tree in arb_tree(), sel in any::<[prop::sample::Index; 3]>()) {
        let a = NodeId::from_index(sel[0].index(tree.len()));
        let b = NodeId::from_index(sel[1].index(tree.len()));
        let c = NodeId::from_index(sel[2].index(tree.len()));
        prop_assert_eq!(tree.distance(a, b), tree.distance(b, a));
        prop_assert!(tree.distance(a, c) <= tree.distance(a, b) + tree.distance(b, c));
        // Nodes on the a-b path witness equality.
        let path = tree.path(a, b);
        for &m in &path {
            prop_assert_eq!(
                tree.distance(a, m) + tree.distance(m, b),
                tree.distance(a, b)
            );
        }
    }

    /// The diameter equals the maximum pairwise distance and the center's
    /// eccentricity is at most ceil(diameter / 2).
    #[test]
    fn diameter_and_center_laws(tree in arb_tree()) {
        let brute = tree
            .nodes()
            .flat_map(|a| tree.nodes().map(move |b| (a, b)))
            .map(|(a, b)| tree.distance(a, b))
            .max()
            .unwrap();
        prop_assert_eq!(tree.diameter(), brute);
        let center = tree.center();
        prop_assert!(tree.eccentricity(center) <= tree.diameter().div_ceil(2));
    }

    /// Orientations: exactly one sink; every walk terminates at it with
    /// length equal to the tree distance.
    #[test]
    fn orientation_walks_are_shortest_paths(tree in arb_tree(), sel in any::<prop::sample::Index>()) {
        let sink = NodeId::from_index(sel.index(tree.len()));
        let orientation = tree.orient_toward(sink);
        for v in tree.nodes() {
            let walk = orientation.walk_to_sink(v);
            prop_assert_eq!(*walk.last().unwrap(), sink);
            prop_assert_eq!(walk.len() - 1, tree.distance(v, sink));
        }
    }

    /// Grid quorum systems satisfy the Maekawa invariants at every size,
    /// and their size stays within the 2*ceil(sqrt(N)) envelope.
    #[test]
    fn grid_quorums_always_verify(n in 1usize..140) {
        let qs = QuorumSystem::grid(n);
        prop_assert!(qs.verify().is_ok());
        let bound = 2 * (n as f64).sqrt().ceil() as usize;
        prop_assert!(qs.max_size() <= bound, "max {} > {}", qs.max_size(), bound);
    }

    /// `for_size` always produces a verifying system.
    #[test]
    fn for_size_always_verifies(n in 1usize..80) {
        prop_assert!(QuorumSystem::for_size(n).verify().is_ok());
    }
}
