//! Keyed (multi-lock) workload generators.
//!
//! A lock space serves many named locks at once, so its demand model has
//! two extra axes the single-lock workloads lack: *which key* each
//! request targets (uniform or Zipf-skewed popularity — production lock
//! traffic is famously skewed, a few hot keys and a long cold tail) and
//! *per-node* request streams (every node runs its own closed loop,
//! concurrently with all the others).
//!
//! The contract mirrors the single-lock [`Workload`](dmx_simnet::Workload)
//! closed loop, lifted to keys: a [`KeyedWorkload`] hands each node one
//! deterministic [`KeyStream`], and the node asks its stream for the next
//! `(time, key)` request after every release. Streams are deterministic
//! per `(seed, node)`, so multiplexed runs reproduce exactly like
//! single-lock ones.
//!
//! # Examples
//!
//! ```
//! use dmx_simnet::{LatencyModel, Time};
//! use dmx_topology::NodeId;
//! use dmx_workload::{KeyDist, KeyStream, KeyedThinkTime, KeyedWorkload};
//!
//! let w = KeyedThinkTime::new(64, KeyDist::Zipf { exponent: 1.2 },
//!                             LatencyModel::Fixed(Time(5)), 3, 42);
//! let mut stream = w.stream(NodeId(1));
//! let (at, key) = stream.next_request(Time::ZERO).unwrap();
//! assert_eq!(at, Time(5));
//! assert!(key.index() < 64);
//! ```

use std::sync::Arc;

use dmx_core::LockId;
use dmx_simnet::{LatencyModel, Time};
use dmx_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One node's deterministic request stream over the key space.
///
/// `next_request(now)` returns the node's next request as an absolute
/// `(time, key)` pair with `time >= now`, or `None` when the node is
/// done. It is first called with [`Time::ZERO`] and then once after each
/// release, so implementations see a per-node closed loop: at most one
/// outstanding request per node at any moment.
pub trait KeyStream: Send {
    /// The next `(time, key)` this node requests at/after `now`, or
    /// `None` to retire the node.
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)>;
}

/// A factory of per-node [`KeyStream`]s — the keyed analogue of
/// [`Workload`](dmx_simnet::Workload).
pub trait KeyedWorkload {
    /// The deterministic stream for `node`.
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream>;
}

/// Key-popularity distribution for generated streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-skewed popularity: key `k` is drawn with probability
    /// proportional to `1 / (k + 1)^exponent` (key 0 hottest). Exponents
    /// around 1 model realistic hot-key skew.
    Zipf {
        /// The skew exponent `s` (0 degenerates to uniform).
        exponent: f64,
    },
}

/// Samples keys from a [`KeyDist`]: O(1) for uniform, one binary search
/// over a precomputed CDF for Zipf (no allocation per sample).
///
/// The CDF is shared (`Arc`) between the per-node streams of one
/// workload, so a 4096-key Zipf table is built once, not once per node.
///
/// # Examples
///
/// ```
/// use dmx_workload::{KeyDist, KeySampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = KeySampler::new(16, KeyDist::Zipf { exponent: 1.0 });
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(sampler.sample(&mut rng).index() < 16);
/// ```
#[derive(Debug, Clone)]
pub struct KeySampler {
    keys: u32,
    /// Cumulative probabilities per key; `None` for the uniform fast path.
    cdf: Option<Arc<Vec<f64>>>,
}

impl KeySampler {
    /// A sampler over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`.
    pub fn new(keys: u32, dist: KeyDist) -> Self {
        assert!(keys > 0, "key space needs at least one key");
        let cdf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf { exponent } => {
                assert!(
                    exponent.is_finite() && exponent >= 0.0,
                    "Zipf exponent must be finite and non-negative"
                );
                let mut cdf = Vec::with_capacity(keys as usize);
                let mut total = 0.0f64;
                for k in 0..keys {
                    total += 1.0 / f64::from(k + 1).powf(exponent);
                    cdf.push(total);
                }
                for c in &mut cdf {
                    *c /= total;
                }
                Some(Arc::new(cdf))
            }
        };
        KeySampler { keys, cdf }
    }

    /// Number of keys in the space.
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// Draws one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> LockId {
        match &self.cdf {
            None => LockId(rng.gen_range(0..self.keys)),
            Some(cdf) => {
                let x = rng.gen_range(0.0..1.0);
                let idx = cdf.partition_point(|&c| c < x);
                LockId(idx.min(self.keys as usize - 1) as u32)
            }
        }
    }
}

/// Closed-loop keyed think-time workload: every node cycles request →
/// hold → think, drawing each request's key from a [`KeyDist`] and each
/// think time from a [`LatencyModel`], `rounds` times.
///
/// This is the lock-space analogue of [`ThinkTime`](crate::ThinkTime):
/// sweeping the mean think time sweeps offered load, and sweeping the
/// distribution sweeps key skew — the `keys × skew × n` grid the
/// `lock_scaling` experiment walks.
#[derive(Debug, Clone)]
pub struct KeyedThinkTime {
    sampler: KeySampler,
    think: LatencyModel,
    rounds: u32,
    seed: u64,
    stagger: u64,
}

impl KeyedThinkTime {
    /// `rounds` critical-section visits per node over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0` or `rounds == 0`.
    pub fn new(keys: u32, dist: KeyDist, think: LatencyModel, rounds: u32, seed: u64) -> Self {
        assert!(rounds > 0, "keyed think-time workload needs >= 1 round");
        KeyedThinkTime {
            sampler: KeySampler::new(keys, dist),
            think,
            rounds,
            seed,
            stagger: 1,
        }
    }

    /// Staggers the per-node start times: node `i`'s first request is
    /// delayed by `i mod stagger` extra ticks, spreading the initial
    /// burst over `stagger` consecutive ticks instead of landing it all
    /// on one. This is the demand shape coalescing windows exist for —
    /// traffic arriving on *different* ticks inside one window — so the
    /// lock-space window sweeps drive their cells with it.
    ///
    /// # Panics
    ///
    /// Panics if `stagger == 0` (use 1 for no stagger).
    pub fn with_stagger(mut self, stagger: u64) -> Self {
        assert!(stagger > 0, "stagger of 0 ticks is meaningless; use 1");
        self.stagger = stagger;
        self
    }

    /// Number of keys in the space.
    pub fn keys(&self) -> u32 {
        self.sampler.keys()
    }
}

impl KeyedWorkload for KeyedThinkTime {
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream> {
        // Split one seed into per-node streams (SplitMix-style odd
        // multiplier keeps streams uncorrelated and deterministic).
        let node_seed = self
            .seed
            .wrapping_add((u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Box::new(ThinkStream {
            rng: StdRng::seed_from_u64(node_seed),
            sampler: self.sampler.clone(),
            think: self.think,
            remaining: self.rounds,
            offset: Time(u64::from(node.0) % self.stagger),
        })
    }
}

#[derive(Debug)]
struct ThinkStream {
    rng: StdRng,
    sampler: KeySampler,
    think: LatencyModel,
    remaining: u32,
    /// Extra delay applied to the first request only (stagger).
    offset: Time,
}

impl KeyStream for ThinkStream {
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at = now + self.think.sample(&mut self.rng) + self.offset;
        self.offset = Time::ZERO;
        let key = self.sampler.sample(&mut self.rng);
        Some((at, key))
    }
}

/// Closed-loop keyed workload with **node affinity**, a *hot-tenant*
/// model: every key has a deterministic *home node* (a hash of the key,
/// deliberately *not* `key % n` so it disagrees with modulo-style hub
/// seeding), a fraction `affinity` of every key's demand is born at its
/// home node, and the thin `1 − affinity` tail is spread across all
/// nodes via the global [`KeyDist`]. Per-key aggregate popularity is
/// *exactly* the global distribution; what affinity changes is **where
/// that demand originates** — the home node of a hot key issues
/// proportionally more requests (it is a hot tenant), so per-node
/// request volume follows [`KeyedAffinity::rounds_for`] rather than a
/// flat per-node constant, and `rounds` is the fleet-wide *average*
/// visits per node.
///
/// This is the demand shape real caches and shard routers produce: a
/// key's traffic concentrates at one node with a thin global tail. It
/// is what holder leases exploit (back-to-back local claims) and what
/// skew-aware hub placement targets ([`KeyedAffinity::hub_profile`]
/// names each key's hottest node). [`KeyedThinkTime`]'s symmetric skew
/// cannot produce it: there every node is equally likely to draw the
/// hot key, so consecutive same-node claims stay rare — and no token
/// scheme, however clever, can beat the cross-node queueing that
/// symmetric skew forces (the privilege must round-trip between
/// distinct requesters on every grant).
///
/// # Examples
///
/// ```
/// use dmx_simnet::{LatencyModel, Time};
/// use dmx_topology::NodeId;
/// use dmx_workload::{KeyDist, KeyStream, KeyedAffinity, KeyedWorkload};
///
/// let w = KeyedAffinity::new(64, 15, KeyDist::Zipf { exponent: 1.1 },
///                            0.9, LatencyModel::Fixed(Time(3)), 5, 42);
/// let profile = w.hub_profile();
/// assert_eq!(profile.len(), 64);
/// let (_, key) = w.stream(NodeId(2)).next_request(Time::ZERO).unwrap();
/// assert!(key.index() < 64);
/// ```
#[derive(Debug, Clone)]
pub struct KeyedAffinity {
    sampler: KeySampler,
    dist: KeyDist,
    nodes: usize,
    affinity: f64,
    think: LatencyModel,
    rounds: u32,
    seed: u64,
    stagger: u64,
    spacing: u64,
}

/// SplitMix64 finalizer — the key→home hash. Deliberately unrelated to
/// `key % n` so modulo placement and demand disagree (the gap the
/// skew-aware placement closes).
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    z = (z ^ (z >> 33)).wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    z ^ (z >> 33)
}

impl KeyedAffinity {
    /// `rounds` critical-section visits per node *on average* over
    /// `keys` keys across `nodes` nodes; a fraction `affinity` of every
    /// key's demand is born at the key's home node.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`, `nodes == 0`, `rounds == 0`, or
    /// `affinity` is outside `[0, 1]`.
    pub fn new(
        keys: u32,
        nodes: usize,
        dist: KeyDist,
        affinity: f64,
        think: LatencyModel,
        rounds: u32,
        seed: u64,
    ) -> Self {
        assert!(nodes > 0, "affinity workload needs >= 1 node");
        assert!(rounds > 0, "affinity workload needs >= 1 round");
        assert!(
            (0.0..=1.0).contains(&affinity),
            "affinity is a probability; got {affinity}"
        );
        KeyedAffinity {
            sampler: KeySampler::new(keys, dist),
            dist,
            nodes,
            affinity,
            think,
            rounds,
            seed,
            stagger: 1,
            spacing: 0,
        }
    }

    /// Staggers the per-node start times, exactly like
    /// [`KeyedThinkTime::with_stagger`].
    ///
    /// # Panics
    ///
    /// Panics if `stagger == 0` (use 1 for no stagger).
    pub fn with_stagger(mut self, stagger: u64) -> Self {
        assert!(stagger > 0, "stagger of 0 ticks is meaningless; use 1");
        self.stagger = stagger;
        self
    }

    /// Spaces node onsets `ticks` apart: node `i`'s first request is
    /// delayed by an extra `i × ticks`. A hot-tenant fleet's background
    /// tenants wake gradually — with every cold tenant's entire closed
    /// loop compressed into tick 0, a cell measures a one-tick
    /// thundering herd rather than steady skewed traffic. 0 (the
    /// default) disables spacing.
    pub fn with_onset_spacing(mut self, ticks: u64) -> Self {
        self.spacing = ticks;
        self
    }

    /// Number of keys in the space.
    pub fn keys(&self) -> u32 {
        self.sampler.keys()
    }

    /// `key`'s home node — where `affinity` of its demand originates.
    pub fn home(&self, key: LockId) -> NodeId {
        NodeId((mix64(u64::from(key.0) + 1) % self.nodes as u64) as u32)
    }

    /// The per-key hottest-node map — exactly the profile to hand to a
    /// `Placement::Profile`-style hub assignment: key `k`'s initial
    /// sink is its home node, where most of its requests will be born.
    pub fn hub_profile(&self) -> Vec<NodeId> {
        (0..self.sampler.keys())
            .map(|k| self.home(LockId(k)))
            .collect()
    }

    /// `key`'s weight under the global distribution (unnormalized).
    fn weight(&self, key: u32) -> f64 {
        match self.dist {
            KeyDist::Uniform => 1.0,
            KeyDist::Zipf { exponent } => 1.0 / f64::from(key + 1).powf(exponent),
        }
    }

    /// The fraction of the global key distribution owned by `node`'s
    /// home pool (0 when no key calls `node` home).
    fn pool_weight(&self, node: NodeId) -> f64 {
        let total: f64 = (0..self.sampler.keys()).map(|k| self.weight(k)).sum();
        let pool: f64 = (0..self.sampler.keys())
            .filter(|&k| self.home(LockId(k)) == node)
            .map(|k| self.weight(k))
            .sum();
        pool / total
    }

    /// The fraction of all system demand born at `node`: `affinity` of
    /// its home pool's global weight, plus an equal slice of the thin
    /// `1 − affinity` tail. Shares sum to 1 across nodes.
    fn share(&self, node: NodeId) -> f64 {
        self.affinity * self.pool_weight(node) + (1.0 - self.affinity) / self.nodes as f64
    }

    /// Requests issued by `node` over the whole run — the hot-tenant
    /// knob: the home node of a popular key issues proportionally more
    /// (its share of `rounds × nodes` total requests), never zero.
    pub fn rounds_for(&self, node: NodeId) -> u32 {
        let target = f64::from(self.rounds) * self.nodes as f64 * self.share(node);
        (target.round() as u32).max(1)
    }

    /// Total requests across all nodes (the sum of
    /// [`rounds_for`](KeyedAffinity::rounds_for), which rounding can
    /// nudge slightly off `rounds × nodes`).
    pub fn total_requests(&self) -> u64 {
        (0..self.nodes)
            .map(|i| u64::from(self.rounds_for(NodeId::from_index(i))))
            .sum()
    }

    /// The per-key weights of `node`'s home keys under the global
    /// distribution, as a normalized CDF over `(key, cum_prob)` pairs —
    /// empty when no key calls `node` home.
    fn home_cdf(&self, node: NodeId) -> Vec<(LockId, f64)> {
        let mut cdf = Vec::new();
        let mut total = 0.0f64;
        for k in 0..self.sampler.keys() {
            if self.home(LockId(k)) != node {
                continue;
            }
            let w = self.weight(k);
            total += w;
            cdf.push((LockId(k), total));
        }
        for (_, c) in &mut cdf {
            *c /= total;
        }
        cdf
    }
}

impl KeyedWorkload for KeyedAffinity {
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream> {
        let node_seed = self
            .seed
            .wrapping_add((u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Per-draw home probability that makes exactly `affinity` of
        // each key's aggregate demand home-born: the home slice of this
        // node's share, over its whole share.
        let share = self.share(node);
        let local_prob = if share > 0.0 {
            self.affinity * self.pool_weight(node) / share
        } else {
            0.0
        };
        Box::new(AffinityStream {
            rng: StdRng::seed_from_u64(node_seed),
            sampler: self.sampler.clone(),
            home_cdf: self.home_cdf(node),
            local_prob,
            think: self.think,
            remaining: self.rounds_for(node),
            offset: Time(u64::from(node.0) % self.stagger + u64::from(node.0) * self.spacing),
        })
    }
}

#[derive(Debug)]
struct AffinityStream {
    rng: StdRng,
    sampler: KeySampler,
    /// Normalized CDF over this node's home keys (empty: no home keys).
    home_cdf: Vec<(LockId, f64)>,
    /// Per-draw probability of a home-pool draw for *this node* (the
    /// home slice of the node's demand share — not the global
    /// `affinity`, which is a per-key property).
    local_prob: f64,
    think: LatencyModel,
    remaining: u32,
    /// Extra delay applied to the first request only (stagger).
    offset: Time,
}

impl KeyStream for AffinityStream {
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at = now + self.think.sample(&mut self.rng) + self.offset;
        self.offset = Time::ZERO;
        let local = !self.home_cdf.is_empty() && self.rng.gen_range(0.0..1.0) < self.local_prob;
        let key = if local {
            let x = self.rng.gen_range(0.0..1.0);
            let idx = self.home_cdf.partition_point(|&(_, c)| c < x);
            self.home_cdf[idx.min(self.home_cdf.len() - 1)].0
        } else {
            self.sampler.sample(&mut self.rng)
        };
        Some((at, key))
    }
}

/// An explicit keyed schedule: each node issues a fixed `(time, key)`
/// sequence (sorted by time at construction). Requests whose scheduled
/// time has already passed are issued immediately.
///
/// The workhorse for reproducible cross-checks — e.g. comparing a
/// multiplexed run's per-key message counts against equivalent
/// single-lock runs, where the request times must be pinned.
#[derive(Debug, Clone, Default)]
pub struct KeyedSchedule {
    per_node: Vec<Vec<(Time, LockId)>>,
}

impl KeyedSchedule {
    /// An empty schedule for `n` nodes.
    pub fn new(n: usize) -> Self {
        KeyedSchedule {
            per_node: vec![Vec::new(); n],
        }
    }

    /// Appends a request for `key` by `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn push(&mut self, node: NodeId, at: Time, key: LockId) {
        self.per_node[node.index()].push((at, key));
    }

    /// A schedule partitioning the key space across nodes: node `i`
    /// requests keys `i, i + n, i + 2n, …` (all keys `< keys`), one
    /// request every `spacing` ticks. Touches **every** key exactly once
    /// — the deterministic full-coverage driver for scale tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn partition(n: usize, keys: u32, spacing: Time) -> Self {
        assert!(n > 0, "schedule needs at least one node");
        let mut s = KeyedSchedule::new(n);
        for i in 0..n {
            let mut round = 0u64;
            let mut k = i as u32;
            while k < keys {
                s.push(
                    NodeId::from_index(i),
                    Time(round * spacing.ticks()),
                    LockId(k),
                );
                k += n as u32;
                round += 1;
            }
        }
        s
    }

    /// A globally serialized round-robin schedule: request `j` (of
    /// `requests`) is issued by node `j mod n` for key `j mod keys` at
    /// time `j * spacing`. With `spacing` generously larger than any
    /// grant latency, every request completes before the next one starts
    /// — per-key traffic is then independent of the other keys.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `keys == 0`.
    pub fn round_robin(n: usize, keys: u32, requests: usize, spacing: Time) -> Self {
        assert!(n > 0 && keys > 0, "need nodes and keys");
        let mut s = KeyedSchedule::new(n);
        for j in 0..requests {
            s.push(
                NodeId::from_index(j % n),
                Time(j as u64 * spacing.ticks()),
                LockId((j % keys as usize) as u32),
            );
        }
        s
    }

    /// Number of nodes the schedule covers.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// `true` when the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Total scheduled requests across all nodes.
    pub fn total_requests(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum()
    }
}

impl KeyedWorkload for KeyedSchedule {
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream> {
        let mut entries = self.per_node[node.index()].clone();
        entries.sort_by_key(|&(at, _)| at);
        Box::new(ScheduleStream { entries, cursor: 0 })
    }
}

#[derive(Debug)]
struct ScheduleStream {
    entries: Vec<(Time, LockId)>,
    cursor: usize,
}

impl KeyStream for ScheduleStream {
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)> {
        let &(at, key) = self.entries.get(self.cursor)?;
        self.cursor += 1;
        Some((at.max(now), key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sampler_covers_the_space() {
        let sampler = KeySampler::new(8, KeyDist::Uniform);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[sampler.sample(&mut rng).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "512 draws must touch all 8 keys");
    }

    #[test]
    fn zipf_sampler_skews_toward_low_keys() {
        let sampler = KeySampler::new(64, KeyDist::Zipf { exponent: 1.2 });
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 64];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng).index()] += 1;
        }
        assert!(
            counts[0] > counts[32] * 5,
            "key 0 ({}) must dominate key 32 ({})",
            counts[0],
            counts[32]
        );
        // Zipf(1.2) over 64 keys gives key 0 roughly a quarter of the mass.
        assert!(counts[0] > 3_000);
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let sampler = KeySampler::new(4, KeyDist::Zipf { exponent: 0.0 });
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            counts[sampler.sample(&mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((1_700..=2_300).contains(&c), "expected ~2000, got {c}");
        }
    }

    #[test]
    fn think_streams_are_deterministic_per_node_seed() {
        let w = KeyedThinkTime::new(
            32,
            KeyDist::Zipf { exponent: 1.0 },
            LatencyModel::Exponential { mean: Time(9) },
            5,
            42,
        );
        let drain = |node| {
            let mut s = w.stream(node);
            let mut out = Vec::new();
            let mut now = Time::ZERO;
            while let Some((at, k)) = s.next_request(now) {
                out.push((at, k));
                now = at + Time(1);
            }
            out
        };
        assert_eq!(drain(NodeId(3)), drain(NodeId(3)));
        assert_ne!(drain(NodeId(3)), drain(NodeId(4)));
        assert_eq!(drain(NodeId(0)).len(), 5);
    }

    #[test]
    fn stagger_spreads_first_requests_across_ticks() {
        let w = KeyedThinkTime::new(8, KeyDist::Uniform, LatencyModel::Fixed(Time(0)), 3, 5)
            .with_stagger(4);
        let base = KeyedThinkTime::new(8, KeyDist::Uniform, LatencyModel::Fixed(Time(0)), 3, 5);
        for node in 0..8u32 {
            let (at, key) = w.stream(NodeId(node)).next_request(Time::ZERO).unwrap();
            let (base_at, base_key) = base.stream(NodeId(node)).next_request(Time::ZERO).unwrap();
            assert_eq!(at, base_at + Time(u64::from(node) % 4));
            assert_eq!(key, base_key, "stagger must not perturb the key draws");
        }
        // Only the first request shifts; later ones resume the base cadence.
        let mut s = w.stream(NodeId(3));
        let (first, _) = s.next_request(Time::ZERO).unwrap();
        assert_eq!(first, Time(3));
        let (second, _) = s.next_request(first).unwrap();
        assert_eq!(second, first, "zero think time: no residual offset");
    }

    #[test]
    #[should_panic(expected = "stagger of 0 ticks")]
    fn zero_stagger_is_rejected() {
        let _ = KeyedThinkTime::new(4, KeyDist::Uniform, LatencyModel::Fixed(Time(0)), 1, 0)
            .with_stagger(0);
    }

    #[test]
    fn affinity_concentrates_each_keys_demand_at_its_home_node() {
        let nodes = 15usize;
        let w = KeyedAffinity::new(
            64,
            nodes,
            KeyDist::Zipf { exponent: 1.1 },
            0.9,
            LatencyModel::Fixed(Time(0)),
            2000,
            42,
        );
        // Drain every node's stream, tallying per-key (home, total).
        let mut home = vec![0u32; 64];
        let mut total = vec![0u32; 64];
        let mut issued = vec![0u32; nodes];
        for node in 0..nodes {
            let node = NodeId::from_index(node);
            let mut s = w.stream(node);
            let mut now = Time::ZERO;
            while let Some((at, k)) = s.next_request(now) {
                issued[node.index()] += 1;
                total[k.index()] += 1;
                if w.home(k) == node {
                    home[k.index()] += 1;
                }
                now = at + Time(1);
            }
            assert_eq!(issued[node.index()], w.rounds_for(node));
        }
        // The per-KEY locality contract: ~90% of every busy key's
        // demand is born at its home node (sampling slack downward).
        for k in 0..64 {
            if total[k] < 200 {
                continue; // cold tail: too few draws to estimate a share
            }
            let share = f64::from(home[k]) / f64::from(total[k]);
            assert!(
                share > 0.85,
                "key {k}: only {}/{} draws were home-born",
                home[k],
                total[k]
            );
        }
        // The hot-tenant contract: the hottest key's home node issues a
        // large multiple of a cold node's volume, and the fleet total
        // stays the advertised sum.
        let hottest_home = w.home(LockId(0)).index();
        assert!(
            issued[hottest_home] > 3 * 2000,
            "key 0's home node issued only {} of {} total",
            issued[hottest_home],
            w.total_requests()
        );
        assert_eq!(
            u64::from(issued.iter().sum::<u32>()),
            w.total_requests(),
            "streams must issue exactly total_requests()"
        );
    }

    #[test]
    fn affinity_hub_profile_names_each_keys_hottest_node() {
        let nodes = 15usize;
        let w = KeyedAffinity::new(
            64,
            nodes,
            KeyDist::Zipf { exponent: 1.1 },
            0.9,
            LatencyModel::Fixed(Time(0)),
            3000,
            7,
        );
        let profile = w.hub_profile();
        assert_eq!(profile.len(), 64);
        assert!(profile.iter().all(|h| h.index() < nodes));
        // Empirical per-(key, node) counts across every node's stream.
        let mut counts = vec![[0u32; 15]; 64];
        for node in 0..nodes {
            let node = NodeId::from_index(node);
            let mut s = w.stream(node);
            let mut now = Time::ZERO;
            while let Some((at, k)) = s.next_request(now) {
                counts[k.index()][node.index()] += 1;
                now = at + Time(1);
            }
        }
        // For every key with meaningful traffic, the empirically hottest
        // node is the profiled home.
        for (k, per_node) in counts.iter().enumerate() {
            let total: u32 = per_node.iter().sum();
            if total < 100 {
                continue; // cold tail: too few draws to rank nodes
            }
            let hottest = (0..nodes).max_by_key(|&i| per_node[i]).unwrap();
            assert_eq!(
                profile[k].index(),
                hottest,
                "key {k}: profile says {} but node {hottest} was hottest",
                profile[k]
            );
        }
        // The hash spreads homes across many nodes (not all on one).
        let distinct: std::collections::HashSet<_> = profile.iter().collect();
        assert!(distinct.len() > nodes / 2);
        // And it disagrees with modulo placement somewhere — otherwise
        // profile placement could never beat it.
        assert!((0..64).any(|k| profile[k].index() != k % nodes));
    }

    #[test]
    fn affinity_streams_are_deterministic_and_stagger_only_shifts_start() {
        let w = KeyedAffinity::new(
            32,
            8,
            KeyDist::Uniform,
            0.5,
            LatencyModel::Exponential { mean: Time(6) },
            10,
            99,
        );
        let drain = |w: &KeyedAffinity, node| {
            let mut s = w.stream(node);
            let mut out = Vec::new();
            let mut now = Time::ZERO;
            while let Some((at, k)) = s.next_request(now) {
                out.push((at, k));
                now = at + Time(1);
            }
            out
        };
        assert_eq!(drain(&w, NodeId(5)), drain(&w, NodeId(5)));
        assert_ne!(drain(&w, NodeId(5)), drain(&w, NodeId(6)));
        let staggered = w.clone().with_stagger(4);
        let base = drain(&w, NodeId(3));
        let shifted = drain(&staggered, NodeId(3));
        assert_eq!(shifted[0].0, base[0].0 + Time(3));
        assert_eq!(shifted[0].1, base[0].1, "stagger must not perturb keys");
    }

    #[test]
    fn partition_schedule_touches_every_key_once() {
        let s = KeyedSchedule::partition(5, 17, Time(10));
        assert_eq!(s.total_requests(), 17);
        let mut seen = [false; 17];
        for node in 0..5 {
            let mut stream = s.stream(NodeId::from_index(node));
            while let Some((_, k)) = stream.next_request(Time::ZERO) {
                assert!(!seen[k.index()], "key {k} scheduled twice");
                seen[k.index()] = true;
                assert_eq!(k.index() % 5, node, "partition misassigned {k}");
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_serializes_requests() {
        let s = KeyedSchedule::round_robin(3, 2, 7, Time(100));
        assert_eq!(s.total_requests(), 7);
        // Node 0 gets requests 0, 3, 6 at times 0, 300, 600.
        let mut stream = s.stream(NodeId(0));
        assert_eq!(stream.next_request(Time::ZERO), Some((Time(0), LockId(0))));
        assert_eq!(
            stream.next_request(Time(1)),
            Some((Time(300), LockId(1))),
            "request 3 targets key 3 % 2 = 1"
        );
        assert_eq!(stream.next_request(Time(301)), Some((Time(600), LockId(0))));
        assert_eq!(stream.next_request(Time(601)), None);
    }

    #[test]
    fn schedule_never_requests_in_the_past() {
        let mut s = KeyedSchedule::new(1);
        s.push(NodeId(0), Time(5), LockId(0));
        let mut stream = s.stream(NodeId(0));
        // The node only becomes free at t = 9; the request slips to then.
        assert_eq!(stream.next_request(Time(9)), Some((Time(9), LockId(0))));
    }
}
