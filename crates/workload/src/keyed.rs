//! Keyed (multi-lock) workload generators.
//!
//! A lock space serves many named locks at once, so its demand model has
//! two extra axes the single-lock workloads lack: *which key* each
//! request targets (uniform or Zipf-skewed popularity — production lock
//! traffic is famously skewed, a few hot keys and a long cold tail) and
//! *per-node* request streams (every node runs its own closed loop,
//! concurrently with all the others).
//!
//! The contract mirrors the single-lock [`Workload`](dmx_simnet::Workload)
//! closed loop, lifted to keys: a [`KeyedWorkload`] hands each node one
//! deterministic [`KeyStream`], and the node asks its stream for the next
//! `(time, key)` request after every release. Streams are deterministic
//! per `(seed, node)`, so multiplexed runs reproduce exactly like
//! single-lock ones.
//!
//! # Examples
//!
//! ```
//! use dmx_simnet::{LatencyModel, Time};
//! use dmx_topology::NodeId;
//! use dmx_workload::{KeyDist, KeyStream, KeyedThinkTime, KeyedWorkload};
//!
//! let w = KeyedThinkTime::new(64, KeyDist::Zipf { exponent: 1.2 },
//!                             LatencyModel::Fixed(Time(5)), 3, 42);
//! let mut stream = w.stream(NodeId(1));
//! let (at, key) = stream.next_request(Time::ZERO).unwrap();
//! assert_eq!(at, Time(5));
//! assert!(key.index() < 64);
//! ```

use std::sync::Arc;

use dmx_core::LockId;
use dmx_simnet::{LatencyModel, Time};
use dmx_topology::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One node's deterministic request stream over the key space.
///
/// `next_request(now)` returns the node's next request as an absolute
/// `(time, key)` pair with `time >= now`, or `None` when the node is
/// done. It is first called with [`Time::ZERO`] and then once after each
/// release, so implementations see a per-node closed loop: at most one
/// outstanding request per node at any moment.
pub trait KeyStream: Send {
    /// The next `(time, key)` this node requests at/after `now`, or
    /// `None` to retire the node.
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)>;
}

/// A factory of per-node [`KeyStream`]s — the keyed analogue of
/// [`Workload`](dmx_simnet::Workload).
pub trait KeyedWorkload {
    /// The deterministic stream for `node`.
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream>;
}

/// Key-popularity distribution for generated streams.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDist {
    /// Every key equally likely.
    Uniform,
    /// Zipf-skewed popularity: key `k` is drawn with probability
    /// proportional to `1 / (k + 1)^exponent` (key 0 hottest). Exponents
    /// around 1 model realistic hot-key skew.
    Zipf {
        /// The skew exponent `s` (0 degenerates to uniform).
        exponent: f64,
    },
}

/// Samples keys from a [`KeyDist`]: O(1) for uniform, one binary search
/// over a precomputed CDF for Zipf (no allocation per sample).
///
/// The CDF is shared (`Arc`) between the per-node streams of one
/// workload, so a 4096-key Zipf table is built once, not once per node.
///
/// # Examples
///
/// ```
/// use dmx_workload::{KeyDist, KeySampler};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = KeySampler::new(16, KeyDist::Zipf { exponent: 1.0 });
/// let mut rng = StdRng::seed_from_u64(1);
/// assert!(sampler.sample(&mut rng).index() < 16);
/// ```
#[derive(Debug, Clone)]
pub struct KeySampler {
    keys: u32,
    /// Cumulative probabilities per key; `None` for the uniform fast path.
    cdf: Option<Arc<Vec<f64>>>,
}

impl KeySampler {
    /// A sampler over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0`.
    pub fn new(keys: u32, dist: KeyDist) -> Self {
        assert!(keys > 0, "key space needs at least one key");
        let cdf = match dist {
            KeyDist::Uniform => None,
            KeyDist::Zipf { exponent } => {
                assert!(
                    exponent.is_finite() && exponent >= 0.0,
                    "Zipf exponent must be finite and non-negative"
                );
                let mut cdf = Vec::with_capacity(keys as usize);
                let mut total = 0.0f64;
                for k in 0..keys {
                    total += 1.0 / f64::from(k + 1).powf(exponent);
                    cdf.push(total);
                }
                for c in &mut cdf {
                    *c /= total;
                }
                Some(Arc::new(cdf))
            }
        };
        KeySampler { keys, cdf }
    }

    /// Number of keys in the space.
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// Draws one key.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> LockId {
        match &self.cdf {
            None => LockId(rng.gen_range(0..self.keys)),
            Some(cdf) => {
                let x = rng.gen_range(0.0..1.0);
                let idx = cdf.partition_point(|&c| c < x);
                LockId(idx.min(self.keys as usize - 1) as u32)
            }
        }
    }
}

/// Closed-loop keyed think-time workload: every node cycles request →
/// hold → think, drawing each request's key from a [`KeyDist`] and each
/// think time from a [`LatencyModel`], `rounds` times.
///
/// This is the lock-space analogue of [`ThinkTime`](crate::ThinkTime):
/// sweeping the mean think time sweeps offered load, and sweeping the
/// distribution sweeps key skew — the `keys × skew × n` grid the
/// `lock_scaling` experiment walks.
#[derive(Debug, Clone)]
pub struct KeyedThinkTime {
    sampler: KeySampler,
    think: LatencyModel,
    rounds: u32,
    seed: u64,
    stagger: u64,
}

impl KeyedThinkTime {
    /// `rounds` critical-section visits per node over `keys` keys.
    ///
    /// # Panics
    ///
    /// Panics if `keys == 0` or `rounds == 0`.
    pub fn new(keys: u32, dist: KeyDist, think: LatencyModel, rounds: u32, seed: u64) -> Self {
        assert!(rounds > 0, "keyed think-time workload needs >= 1 round");
        KeyedThinkTime {
            sampler: KeySampler::new(keys, dist),
            think,
            rounds,
            seed,
            stagger: 1,
        }
    }

    /// Staggers the per-node start times: node `i`'s first request is
    /// delayed by `i mod stagger` extra ticks, spreading the initial
    /// burst over `stagger` consecutive ticks instead of landing it all
    /// on one. This is the demand shape coalescing windows exist for —
    /// traffic arriving on *different* ticks inside one window — so the
    /// lock-space window sweeps drive their cells with it.
    ///
    /// # Panics
    ///
    /// Panics if `stagger == 0` (use 1 for no stagger).
    pub fn with_stagger(mut self, stagger: u64) -> Self {
        assert!(stagger > 0, "stagger of 0 ticks is meaningless; use 1");
        self.stagger = stagger;
        self
    }

    /// Number of keys in the space.
    pub fn keys(&self) -> u32 {
        self.sampler.keys()
    }
}

impl KeyedWorkload for KeyedThinkTime {
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream> {
        // Split one seed into per-node streams (SplitMix-style odd
        // multiplier keeps streams uncorrelated and deterministic).
        let node_seed = self
            .seed
            .wrapping_add((u64::from(node.0) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        Box::new(ThinkStream {
            rng: StdRng::seed_from_u64(node_seed),
            sampler: self.sampler.clone(),
            think: self.think,
            remaining: self.rounds,
            offset: Time(u64::from(node.0) % self.stagger),
        })
    }
}

#[derive(Debug)]
struct ThinkStream {
    rng: StdRng,
    sampler: KeySampler,
    think: LatencyModel,
    remaining: u32,
    /// Extra delay applied to the first request only (stagger).
    offset: Time,
}

impl KeyStream for ThinkStream {
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let at = now + self.think.sample(&mut self.rng) + self.offset;
        self.offset = Time::ZERO;
        let key = self.sampler.sample(&mut self.rng);
        Some((at, key))
    }
}

/// An explicit keyed schedule: each node issues a fixed `(time, key)`
/// sequence (sorted by time at construction). Requests whose scheduled
/// time has already passed are issued immediately.
///
/// The workhorse for reproducible cross-checks — e.g. comparing a
/// multiplexed run's per-key message counts against equivalent
/// single-lock runs, where the request times must be pinned.
#[derive(Debug, Clone, Default)]
pub struct KeyedSchedule {
    per_node: Vec<Vec<(Time, LockId)>>,
}

impl KeyedSchedule {
    /// An empty schedule for `n` nodes.
    pub fn new(n: usize) -> Self {
        KeyedSchedule {
            per_node: vec![Vec::new(); n],
        }
    }

    /// Appends a request for `key` by `node` at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn push(&mut self, node: NodeId, at: Time, key: LockId) {
        self.per_node[node.index()].push((at, key));
    }

    /// A schedule partitioning the key space across nodes: node `i`
    /// requests keys `i, i + n, i + 2n, …` (all keys `< keys`), one
    /// request every `spacing` ticks. Touches **every** key exactly once
    /// — the deterministic full-coverage driver for scale tests.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn partition(n: usize, keys: u32, spacing: Time) -> Self {
        assert!(n > 0, "schedule needs at least one node");
        let mut s = KeyedSchedule::new(n);
        for i in 0..n {
            let mut round = 0u64;
            let mut k = i as u32;
            while k < keys {
                s.push(
                    NodeId::from_index(i),
                    Time(round * spacing.ticks()),
                    LockId(k),
                );
                k += n as u32;
                round += 1;
            }
        }
        s
    }

    /// A globally serialized round-robin schedule: request `j` (of
    /// `requests`) is issued by node `j mod n` for key `j mod keys` at
    /// time `j * spacing`. With `spacing` generously larger than any
    /// grant latency, every request completes before the next one starts
    /// — per-key traffic is then independent of the other keys.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `keys == 0`.
    pub fn round_robin(n: usize, keys: u32, requests: usize, spacing: Time) -> Self {
        assert!(n > 0 && keys > 0, "need nodes and keys");
        let mut s = KeyedSchedule::new(n);
        for j in 0..requests {
            s.push(
                NodeId::from_index(j % n),
                Time(j as u64 * spacing.ticks()),
                LockId((j % keys as usize) as u32),
            );
        }
        s
    }

    /// Number of nodes the schedule covers.
    pub fn len(&self) -> usize {
        self.per_node.len()
    }

    /// `true` when the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.per_node.is_empty()
    }

    /// Total scheduled requests across all nodes.
    pub fn total_requests(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum()
    }
}

impl KeyedWorkload for KeyedSchedule {
    fn stream(&self, node: NodeId) -> Box<dyn KeyStream> {
        let mut entries = self.per_node[node.index()].clone();
        entries.sort_by_key(|&(at, _)| at);
        Box::new(ScheduleStream { entries, cursor: 0 })
    }
}

#[derive(Debug)]
struct ScheduleStream {
    entries: Vec<(Time, LockId)>,
    cursor: usize,
}

impl KeyStream for ScheduleStream {
    fn next_request(&mut self, now: Time) -> Option<(Time, LockId)> {
        let &(at, key) = self.entries.get(self.cursor)?;
        self.cursor += 1;
        Some((at.max(now), key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sampler_covers_the_space() {
        let sampler = KeySampler::new(8, KeyDist::Uniform);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[sampler.sample(&mut rng).index()] = true;
        }
        assert!(seen.iter().all(|&s| s), "512 draws must touch all 8 keys");
    }

    #[test]
    fn zipf_sampler_skews_toward_low_keys() {
        let sampler = KeySampler::new(64, KeyDist::Zipf { exponent: 1.2 });
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u32; 64];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng).index()] += 1;
        }
        assert!(
            counts[0] > counts[32] * 5,
            "key 0 ({}) must dominate key 32 ({})",
            counts[0],
            counts[32]
        );
        // Zipf(1.2) over 64 keys gives key 0 roughly a quarter of the mass.
        assert!(counts[0] > 3_000);
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let sampler = KeySampler::new(4, KeyDist::Zipf { exponent: 0.0 });
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 4];
        for _ in 0..8_000 {
            counts[sampler.sample(&mut rng).index()] += 1;
        }
        for &c in &counts {
            assert!((1_700..=2_300).contains(&c), "expected ~2000, got {c}");
        }
    }

    #[test]
    fn think_streams_are_deterministic_per_node_seed() {
        let w = KeyedThinkTime::new(
            32,
            KeyDist::Zipf { exponent: 1.0 },
            LatencyModel::Exponential { mean: Time(9) },
            5,
            42,
        );
        let drain = |node| {
            let mut s = w.stream(node);
            let mut out = Vec::new();
            let mut now = Time::ZERO;
            while let Some((at, k)) = s.next_request(now) {
                out.push((at, k));
                now = at + Time(1);
            }
            out
        };
        assert_eq!(drain(NodeId(3)), drain(NodeId(3)));
        assert_ne!(drain(NodeId(3)), drain(NodeId(4)));
        assert_eq!(drain(NodeId(0)).len(), 5);
    }

    #[test]
    fn stagger_spreads_first_requests_across_ticks() {
        let w = KeyedThinkTime::new(8, KeyDist::Uniform, LatencyModel::Fixed(Time(0)), 3, 5)
            .with_stagger(4);
        let base = KeyedThinkTime::new(8, KeyDist::Uniform, LatencyModel::Fixed(Time(0)), 3, 5);
        for node in 0..8u32 {
            let (at, key) = w.stream(NodeId(node)).next_request(Time::ZERO).unwrap();
            let (base_at, base_key) = base.stream(NodeId(node)).next_request(Time::ZERO).unwrap();
            assert_eq!(at, base_at + Time(u64::from(node) % 4));
            assert_eq!(key, base_key, "stagger must not perturb the key draws");
        }
        // Only the first request shifts; later ones resume the base cadence.
        let mut s = w.stream(NodeId(3));
        let (first, _) = s.next_request(Time::ZERO).unwrap();
        assert_eq!(first, Time(3));
        let (second, _) = s.next_request(first).unwrap();
        assert_eq!(second, first, "zero think time: no residual offset");
    }

    #[test]
    #[should_panic(expected = "stagger of 0 ticks")]
    fn zero_stagger_is_rejected() {
        let _ = KeyedThinkTime::new(4, KeyDist::Uniform, LatencyModel::Fixed(Time(0)), 1, 0)
            .with_stagger(0);
    }

    #[test]
    fn partition_schedule_touches_every_key_once() {
        let s = KeyedSchedule::partition(5, 17, Time(10));
        assert_eq!(s.total_requests(), 17);
        let mut seen = [false; 17];
        for node in 0..5 {
            let mut stream = s.stream(NodeId::from_index(node));
            while let Some((_, k)) = stream.next_request(Time::ZERO) {
                assert!(!seen[k.index()], "key {k} scheduled twice");
                seen[k.index()] = true;
                assert_eq!(k.index() % 5, node, "partition misassigned {k}");
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn round_robin_serializes_requests() {
        let s = KeyedSchedule::round_robin(3, 2, 7, Time(100));
        assert_eq!(s.total_requests(), 7);
        // Node 0 gets requests 0, 3, 6 at times 0, 300, 600.
        let mut stream = s.stream(NodeId(0));
        assert_eq!(stream.next_request(Time::ZERO), Some((Time(0), LockId(0))));
        assert_eq!(
            stream.next_request(Time(1)),
            Some((Time(300), LockId(1))),
            "request 3 targets key 3 % 2 = 1"
        );
        assert_eq!(stream.next_request(Time(301)), Some((Time(600), LockId(0))));
        assert_eq!(stream.next_request(Time(601)), None);
    }

    #[test]
    fn schedule_never_requests_in_the_past() {
        let mut s = KeyedSchedule::new(1);
        s.push(NodeId(0), Time(5), LockId(0));
        let mut stream = s.stream(NodeId(0));
        // The node only becomes free at t = 9; the request slips to then.
        assert_eq!(stream.next_request(Time(9)), Some((Time(9), LockId(0))));
    }
}
