//! Workload generators for the mutual exclusion experiments.
//!
//! The paper's Chapter 6 analysis assumes specific demand patterns —
//! single isolated requests (6.1 upper bounds), a uniformly random
//! requester with the token uniformly placed (6.2 average bounds), and
//! "heavy demand" saturation (6.2's closing remark, 6.3 synchronization
//! delay). Each pattern is a [`Workload`] implementation driving the
//! engine's closed loop: the engine asks the workload when each node
//! requests next after leaving the critical section.
//!
//! * [`SingleShot`] — an explicit request schedule, no re-requests.
//! * [`Saturated`] — every node re-requests immediately, a fixed number
//!   of times: maximal contention.
//! * [`ThinkTime`] — every node cycles request → critical section →
//!   think, with think times drawn from a [`LatencyModel`]; sweeping the
//!   mean think time sweeps offered load.
//! * [`Hotspot`] — like [`ThinkTime`] but one node thinks much less,
//!   concentrating demand (the favourable case for token algorithms that
//!   leave the token in place).
//!
//! The [`keyed`] module adds the multi-lock axis: per-node request
//! streams over a key space with uniform or Zipf-skewed key popularity
//! ([`KeyedThinkTime`]) and pinned schedules ([`KeyedSchedule`]), driving
//! the `dmx-lockspace` subsystem. The [`script`] module adds the
//! *session* axis: explicit lock-client programs ([`Script`]) — lock,
//! try, timeout, deadline, multi-key — that run identically under the
//! simulator and against the threaded clusters. The [`paced`] module
//! adds the *per-key open-loop* axis ([`PacedKeyDemand`]):
//! counter-based pinned request streams whose per-key demand is
//! independent of every other key — the property the key-sharded
//! parallel runtime builds its shard-count invariance on.
//!
//! # Examples
//!
//! ```
//! use dmx_simnet::Workload;
//! use dmx_workload::Saturated;
//!
//! let mut w = Saturated::new(3); // three entries per node
//! let initial = w.initial_requests(4);
//! assert_eq!(initial.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod keyed;
pub mod paced;
pub mod script;

pub use keyed::{
    KeyDist, KeySampler, KeyStream, KeyedAffinity, KeyedSchedule, KeyedThinkTime, KeyedWorkload,
};
pub use paced::{KeyLoad, PacedKeyDemand};
pub use script::{AcquireMode, Outcome, Script, SessionOp, SessionStep};

use dmx_simnet::{LatencyModel, Time, Workload};
use dmx_topology::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// An explicit one-time schedule: each `(time, node)` pair issues one
/// request; nobody re-requests.
///
/// # Examples
///
/// ```
/// use dmx_simnet::{Time, Workload};
/// use dmx_topology::NodeId;
/// use dmx_workload::SingleShot;
///
/// let mut w = SingleShot::new(vec![(Time(3), NodeId(1))]);
/// assert_eq!(w.initial_requests(4), vec![(Time(3), NodeId(1))]);
/// assert_eq!(w.next_request(NodeId(1), Time(9)), None);
/// ```
#[derive(Debug, Clone)]
pub struct SingleShot {
    schedule: Vec<(Time, NodeId)>,
}

impl SingleShot {
    /// Wraps an explicit schedule.
    pub fn new(schedule: Vec<(Time, NodeId)>) -> Self {
        SingleShot { schedule }
    }

    /// Convenience: all `n` nodes request at `t = 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dmx_simnet::Workload;
    /// # use dmx_workload::SingleShot;
    /// assert_eq!(SingleShot::all_at_zero(3).initial_requests(3).len(), 3);
    /// ```
    pub fn all_at_zero(n: usize) -> Self {
        SingleShot {
            schedule: (0..n)
                .map(|i| (Time::ZERO, NodeId::from_index(i)))
                .collect(),
        }
    }
}

impl Workload for SingleShot {
    fn initial_requests(&mut self, _n: usize) -> Vec<(Time, NodeId)> {
        self.schedule.clone()
    }

    fn next_request(&mut self, _node: NodeId, _now: Time) -> Option<Time> {
        None
    }
}

/// Heavy demand: every node requests at `t = 0` and re-requests the
/// moment it leaves the critical section, `rounds` times in total.
///
/// This realizes the paper's "under heavy demand" regime, where the DAG
/// algorithm and the centralized scheme both approach 3 messages per
/// entry and every hand-off exercises the synchronization delay.
///
/// # Examples
///
/// ```
/// use dmx_simnet::{Time, Workload};
/// use dmx_topology::NodeId;
/// use dmx_workload::Saturated;
///
/// let mut w = Saturated::new(2);
/// w.initial_requests(2);
/// assert_eq!(w.next_request(NodeId(0), Time(5)), Some(Time(5)));
/// assert_eq!(w.next_request(NodeId(0), Time(9)), None); // budget spent
/// ```
#[derive(Debug, Clone)]
pub struct Saturated {
    rounds: u32,
    remaining: Vec<u32>,
}

impl Saturated {
    /// Each node will enter the critical section `rounds` times.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(rounds: u32) -> Self {
        assert!(rounds > 0, "saturated workload needs at least one round");
        Saturated {
            rounds,
            remaining: Vec::new(),
        }
    }
}

impl Workload for Saturated {
    fn initial_requests(&mut self, n: usize) -> Vec<(Time, NodeId)> {
        self.remaining = vec![self.rounds - 1; n];
        (0..n)
            .map(|i| (Time::ZERO, NodeId::from_index(i)))
            .collect()
    }

    fn next_request(&mut self, node: NodeId, now: Time) -> Option<Time> {
        let left = &mut self.remaining[node.index()];
        if *left == 0 {
            None
        } else {
            *left -= 1;
            Some(now)
        }
    }
}

/// Closed-loop think-time workload: after each critical section a node
/// "thinks" for a random duration before requesting again. The mean
/// think time sets the offered load.
///
/// # Examples
///
/// ```
/// use dmx_simnet::{LatencyModel, Time, Workload};
/// use dmx_workload::ThinkTime;
///
/// let mut w = ThinkTime::new(LatencyModel::Exponential { mean: Time(50) }, 5, 42);
/// let initial = w.initial_requests(8);
/// assert_eq!(initial.len(), 8);
/// ```
#[derive(Debug, Clone)]
pub struct ThinkTime {
    think: LatencyModel,
    rounds: u32,
    seed: u64,
    rng: StdRng,
    remaining: Vec<u32>,
}

impl ThinkTime {
    /// `rounds` critical-section visits per node, separated by think
    /// times drawn from `think`; fully deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(think: LatencyModel, rounds: u32, seed: u64) -> Self {
        assert!(rounds > 0, "think-time workload needs at least one round");
        ThinkTime {
            think,
            rounds,
            seed,
            rng: StdRng::seed_from_u64(seed),
            remaining: Vec::new(),
        }
    }
}

impl Workload for ThinkTime {
    fn initial_requests(&mut self, n: usize) -> Vec<(Time, NodeId)> {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.remaining = vec![self.rounds - 1; n];
        (0..n)
            .map(|i| {
                let t = self.think.sample(&mut self.rng);
                (t, NodeId::from_index(i))
            })
            .collect()
    }

    fn next_request(&mut self, node: NodeId, now: Time) -> Option<Time> {
        let left = &mut self.remaining[node.index()];
        if *left == 0 {
            None
        } else {
            *left -= 1;
            Some(now + self.think.sample(&mut self.rng))
        }
    }
}

/// Skewed demand: one *hot* node thinks briefly while everyone else
/// thinks long, so most entries come from the hot node.
///
/// Token-based algorithms shine here: the token parks at the hot node
/// and its re-entries are free, while permission-based algorithms keep
/// paying per entry.
///
/// # Examples
///
/// ```
/// use dmx_simnet::{LatencyModel, Time, Workload};
/// use dmx_topology::NodeId;
/// use dmx_workload::Hotspot;
///
/// let mut w = Hotspot::new(
///     NodeId(2),
///     LatencyModel::Fixed(Time(1)),    // hot node barely pauses
///     LatencyModel::Fixed(Time(500)),  // the rest are mostly idle
///     10,
///     7,
/// );
/// assert_eq!(w.initial_requests(4).len(), 4);
/// ```
#[derive(Debug, Clone)]
pub struct Hotspot {
    hot: NodeId,
    hot_think: LatencyModel,
    cold_think: LatencyModel,
    rounds: u32,
    seed: u64,
    rng: StdRng,
    remaining: Vec<u32>,
}

impl Hotspot {
    /// `rounds` entries per node; the hot node uses `hot_think`, all
    /// others `cold_think`.
    ///
    /// # Panics
    ///
    /// Panics if `rounds == 0`.
    pub fn new(
        hot: NodeId,
        hot_think: LatencyModel,
        cold_think: LatencyModel,
        rounds: u32,
        seed: u64,
    ) -> Self {
        assert!(rounds > 0, "hotspot workload needs at least one round");
        Hotspot {
            hot,
            hot_think,
            cold_think,
            rounds,
            seed,
            rng: StdRng::seed_from_u64(seed),
            remaining: Vec::new(),
        }
    }

    fn think_for(&self, node: NodeId) -> LatencyModel {
        if node == self.hot {
            self.hot_think
        } else {
            self.cold_think
        }
    }
}

impl Workload for Hotspot {
    fn initial_requests(&mut self, n: usize) -> Vec<(Time, NodeId)> {
        self.rng = StdRng::seed_from_u64(self.seed);
        self.remaining = vec![self.rounds - 1; n];
        (0..n)
            .map(|i| {
                let id = NodeId::from_index(i);
                let t = self.think_for(id).sample(&mut self.rng);
                (t, id)
            })
            .collect()
    }

    fn next_request(&mut self, node: NodeId, now: Time) -> Option<Time> {
        let left = &mut self.remaining[node.index()];
        if *left == 0 {
            None
        } else {
            *left -= 1;
            Some(now + self.think_for(node).sample(&mut self.rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmx_simnet::{Ctx, Engine, EngineConfig, Protocol};

    /// Minimal protocol granting itself instantly; good enough to count
    /// workload-driven entries.
    struct Solo;
    impl Protocol for Solo {
        type Message = ();
        fn on_request_cs(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.enter_cs();
        }
        fn on_message(&mut self, _f: NodeId, _m: (), _c: &mut Ctx<'_, ()>) {}
        fn on_exit_cs(&mut self, _c: &mut Ctx<'_, ()>) {}
    }

    #[test]
    fn single_shot_runs_each_request_once() {
        let mut engine = Engine::new(vec![Solo], EngineConfig::default());
        let mut w = SingleShot::new(vec![(Time(1), NodeId(0)), (Time(10), NodeId(0))]);
        let report = engine.run_with_workload(&mut w).unwrap();
        assert_eq!(report.metrics.cs_entries, 2);
    }

    #[test]
    fn saturated_budget_is_rounds_times_n() {
        let mut engine = Engine::new(vec![Solo], EngineConfig::default());
        let mut w = Saturated::new(5);
        let report = engine.run_with_workload(&mut w).unwrap();
        assert_eq!(report.metrics.cs_entries, 5);
    }

    #[test]
    fn think_time_is_deterministic_per_seed() {
        let run = |seed| {
            let mut w = ThinkTime::new(LatencyModel::Exponential { mean: Time(9) }, 3, seed);
            let init = w.initial_requests(5);
            let next: Vec<_> = (0..5)
                .map(|i| w.next_request(NodeId(i), Time(100)))
                .collect();
            (init, next)
        };
        assert_eq!(run(4), run(4));
        assert_ne!(run(4), run(5));
    }

    #[test]
    fn think_time_budget_respected() {
        let mut w = ThinkTime::new(LatencyModel::Fixed(Time(2)), 2, 0);
        w.initial_requests(1);
        assert!(w.next_request(NodeId(0), Time(10)).is_some());
        assert_eq!(w.next_request(NodeId(0), Time(20)), None);
    }

    #[test]
    fn hotspot_hot_node_requests_sooner() {
        let mut w = Hotspot::new(
            NodeId(0),
            LatencyModel::Fixed(Time(1)),
            LatencyModel::Fixed(Time(1000)),
            2,
            0,
        );
        let init = w.initial_requests(3);
        assert_eq!(init[0].0, Time(1));
        assert_eq!(init[1].0, Time(1000));
        let hot_next = w.next_request(NodeId(0), Time(50)).unwrap();
        let cold_next = w.next_request(NodeId(1), Time(50)).unwrap();
        assert!(hot_next < cold_next);
    }

    #[test]
    fn initial_requests_reset_state_between_runs() {
        let mut w = ThinkTime::new(LatencyModel::Fixed(Time(3)), 1, 9);
        let a = w.initial_requests(4);
        let b = w.initial_requests(4);
        assert_eq!(a, b, "re-arming must reproduce the same schedule");
    }

    #[test]
    fn hotspot_concentrates_entries_in_time() {
        // Walk the closed loop by hand (1-tick critical sections): the
        // hot node exhausts its rounds an order of magnitude sooner.
        let mut w = Hotspot::new(
            NodeId(1),
            LatencyModel::Fixed(Time(2)),
            LatencyModel::Fixed(Time(100)),
            30,
            5,
        );
        let init = w.initial_requests(3);
        let mut finish = Vec::new();
        for (start, node) in init {
            let mut t = start + Time(1); // exit of the first visit
            while let Some(next) = w.next_request(node, t) {
                t = next + Time(1);
            }
            finish.push((node, t));
        }
        let hot = finish.iter().find(|(n, _)| *n == NodeId(1)).unwrap().1;
        let cold = finish.iter().find(|(n, _)| *n == NodeId(0)).unwrap().1;
        assert!(hot.ticks() * 10 < cold.ticks(), "hot {hot} vs cold {cold}");
    }

    #[test]
    fn saturated_serves_exactly_rounds_times() {
        let mut engine = Engine::new(vec![Solo], EngineConfig::default());
        let report = engine.run_with_workload(&mut Saturated::new(7)).unwrap();
        assert_eq!(report.metrics.cs_entries, 7);
        assert!(report.metrics.grants.iter().all(|g| g.node == NodeId(0)));
    }
}
