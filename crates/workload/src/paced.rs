//! Per-key paced demand for the parallel lock-space runtime.
//!
//! The node-centric streams in [`keyed`](crate::keyed) couple keys
//! through per-node closed loops: which key a node asks for next
//! depends on when its *previous* key was granted, so the request
//! stream for key `k` depends on the history of every other key the
//! node touched. That coupling is exactly what a key-sharded parallel
//! simulation cannot afford — splitting the key space across shard
//! engines must not change any key's demand.
//!
//! [`PacedKeyDemand`] inverts the axes: demand is **per key** and
//! **open loop**. Every key receives `rounds` bursts of `burst`
//! back-to-back requests; round `r` of key `k` starts at
//! `r * spacing + jitter(seed, k, r)` and each request in the burst
//! picks its issuing node by a counter-based hash of `(seed, k, r, j)`.
//! Nothing is drawn from a shared RNG stream — every value is a pure
//! function of the coordinates — so the stream for key `k` is
//! identical whether `k` shares an engine with the whole key space or
//! with a `1/K` shard of it ("per-shard RNG streams" by construction),
//! and arrivals for one key are strictly increasing in time, which
//! lets an engine chain them lazily (schedule arrival `i + 1` while
//! processing arrival `i`).

use dmx_core::LockId;
use dmx_simnet::Time;
use dmx_topology::NodeId;

/// SplitMix64 finalizer: the avalanche stage used as the counter-based
/// hash behind jitter and node choice.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Open-loop, per-key pinned demand: `rounds` jittered bursts of
/// `burst` requests for every key in `0..keys`, over `nodes` issuing
/// nodes. See the [module docs](self) for why the parallel runtime
/// needs this shape.
///
/// # Examples
///
/// ```
/// use dmx_core::LockId;
/// use dmx_workload::PacedKeyDemand;
///
/// let d = PacedKeyDemand::new(16, 8, 100, 2, 3, 42);
/// let arrivals: Vec<_> = d.arrivals(LockId(5)).collect();
/// assert_eq!(arrivals.len() as u64, d.requests_per_key());
/// // Strictly increasing per key, every issuer in range.
/// for pair in arrivals.windows(2) {
///     assert!(pair[0].0 < pair[1].0);
/// }
/// # assert!(arrivals.iter().all(|&(_, n)| n.index() < 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacedKeyDemand {
    keys: u32,
    nodes: usize,
    spacing: u64,
    burst: u64,
    rounds: u64,
    seed: u64,
}

impl PacedKeyDemand {
    /// A demand over `keys` keys and `nodes` nodes: per key, `rounds`
    /// bursts of `burst` requests, one burst per `spacing`-tick round.
    ///
    /// # Panics
    ///
    /// Panics when `keys`, `nodes`, `burst`, or `rounds` is zero, or
    /// when `spacing <= burst` (rounds would overlap and per-key
    /// arrival times would no longer be strictly increasing).
    pub fn new(keys: u32, nodes: usize, spacing: u64, burst: u64, rounds: u64, seed: u64) -> Self {
        assert!(keys > 0, "paced demand needs at least one key");
        assert!(nodes > 0, "paced demand needs at least one node");
        assert!(burst > 0 && rounds > 0, "paced demand needs requests");
        assert!(
            spacing > burst,
            "spacing ({spacing}) must exceed burst ({burst}) so rounds never overlap"
        );
        PacedKeyDemand {
            keys,
            nodes,
            spacing,
            burst,
            rounds,
            seed,
        }
    }

    /// Number of keys in the demand (`0..keys`).
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// Number of issuing nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Requests every key receives over the whole run.
    pub fn requests_per_key(&self) -> u64 {
        self.rounds * self.burst
    }

    /// Total requests across the key space.
    pub fn total_requests(&self) -> u64 {
        self.requests_per_key() * self.keys as u64
    }

    /// Exclusive upper bound on arrival times: every arrival of every
    /// key lands strictly before this tick.
    pub fn horizon(&self) -> Time {
        Time(self.rounds * self.spacing)
    }

    /// The `i`-th arrival for `key` (0-based over `rounds * burst`),
    /// as `(time, issuing node)`. Pure in `(self, key, i)`.
    ///
    /// Round `r`'s burst starts at `r * spacing` plus a per-`(key,
    /// round)` jitter bounded by `spacing - burst`, so consecutive
    /// arrivals of one key are strictly increasing: request `j` of a
    /// burst lands `j` ticks after its start, and the latest possible
    /// burst end (`r * spacing + spacing - burst - 1 + burst - 1`)
    /// stays short of round `r + 1`'s earliest start.
    pub fn arrival(&self, key: LockId, i: u64) -> (Time, NodeId) {
        debug_assert!(i < self.requests_per_key());
        let (r, j) = (i / self.burst, i % self.burst);
        let h = mix(self
            .seed
            .wrapping_add((key.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(r.wrapping_mul(0x9FB2_1C65_1E98_DF25)));
        let jit_span = self.spacing - self.burst;
        let at = r * self.spacing + h % jit_span + j;
        let node =
            mix(h.wrapping_add((j + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93))) as usize % self.nodes;
        (Time(at), NodeId::from_index(node))
    }

    /// All arrivals for `key`, in time order.
    pub fn arrivals(&self, key: LockId) -> impl Iterator<Item = (Time, NodeId)> + '_ {
        (0..self.requests_per_key()).map(move |i| self.arrival(key, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_key_arrivals_are_strictly_increasing_and_in_range() {
        let d = PacedKeyDemand::new(37, 11, 50, 4, 6, 0xFEED);
        for k in 0..37 {
            let arrivals: Vec<_> = d.arrivals(LockId(k)).collect();
            assert_eq!(arrivals.len() as u64, d.requests_per_key());
            for pair in arrivals.windows(2) {
                assert!(pair[0].0 < pair[1].0, "key {k}: {:?}", pair);
            }
            let last = arrivals.last().unwrap().0;
            assert!(last < d.horizon(), "key {k} ran past the horizon");
            assert!(arrivals.iter().all(|&(_, n)| n.index() < 11));
        }
    }

    #[test]
    fn arrivals_are_pure_functions_of_the_coordinates() {
        // The shard-invariance property at its root: key 9's stream
        // does not depend on any other key existing at all.
        let wide = PacedKeyDemand::new(1024, 16, 40, 2, 5, 7);
        let narrow = PacedKeyDemand::new(10, 16, 40, 2, 5, 7);
        let w: Vec<_> = wide.arrivals(LockId(9)).collect();
        let n: Vec<_> = narrow.arrivals(LockId(9)).collect();
        assert_eq!(w, n);
        // And re-queries reproduce exactly.
        assert_eq!(w, wide.arrivals(LockId(9)).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_and_keys_decorrelate_streams() {
        let a = PacedKeyDemand::new(64, 8, 100, 3, 4, 1);
        let b = PacedKeyDemand::new(64, 8, 100, 3, 4, 2);
        assert_ne!(
            a.arrivals(LockId(0)).collect::<Vec<_>>(),
            b.arrivals(LockId(0)).collect::<Vec<_>>(),
            "different seeds must jitter differently"
        );
        assert_ne!(
            a.arrivals(LockId(0)).collect::<Vec<_>>(),
            a.arrivals(LockId(1)).collect::<Vec<_>>(),
            "different keys must jitter differently"
        );
    }

    #[test]
    #[should_panic(expected = "spacing (3) must exceed burst (3)")]
    fn overlapping_rounds_are_rejected() {
        PacedKeyDemand::new(1, 1, 3, 3, 1, 0);
    }
}
