//! Per-key paced demand for the parallel lock-space runtime.
//!
//! The node-centric streams in [`keyed`](crate::keyed) couple keys
//! through per-node closed loops: which key a node asks for next
//! depends on when its *previous* key was granted, so the request
//! stream for key `k` depends on the history of every other key the
//! node touched. That coupling is exactly what a key-sharded parallel
//! simulation cannot afford — splitting the key space across shard
//! engines must not change any key's demand.
//!
//! [`PacedKeyDemand`] inverts the axes: demand is **per key** and
//! **open loop**. Every key receives `rounds` bursts of back-to-back
//! requests; round `r` of key `k` starts at
//! `r * spacing + jitter(seed, k, r)` and each request in the burst
//! picks its issuing node by a counter-based hash of `(seed, k, r, j)`.
//! Nothing is drawn from a shared RNG stream — every value is a pure
//! function of the coordinates — so the stream for key `k` is
//! identical whether `k` shares an engine with the whole key space or
//! with a `1/K` shard of it ("per-shard RNG streams" by construction),
//! and arrivals for one key are strictly increasing in time, which
//! lets an engine chain them lazily (schedule arrival `i + 1` while
//! processing arrival `i`).
//!
//! # Demand shapes
//!
//! The default load is uniform: every key's burst is `burst` requests
//! wide. [`PacedKeyDemand::with_load`] installs a [`KeyLoad`] instead:
//! under [`KeyLoad::Zipf`] a key's burst width scales with its zipf
//! popularity, so hot keys are *denser* over the same horizon (every
//! key still runs `rounds` rounds — scaling rounds would leave a
//! hot-keys-only serial tail, which is a different and less honest
//! skew). Popularity attaches to a key through a seeded Feistel
//! *rank permutation*: key ids are not popularity-ordered (real key
//! spaces never are), so which ids are hot is a pure function of the
//! seed — and a `key % K` shard map can collide several hot keys onto
//! one shard, which is exactly the imbalance the parallel runtime's
//! `Balanced` shard map exists to fix.
//!
//! [`PacedKeyDemand::with_home_affinity`] additionally biases each
//! key's issuing node toward a per-key *home* (the hot-tenant shape of
//! [`KeyedAffinity`](crate::KeyedAffinity), re-expressed as pinned
//! per-key coordinates); [`PacedKeyDemand::hub_profile`] names those
//! homes for skew-aware placement, and
//! [`PacedKeyDemand::demand_profile`] exports per-key request counts —
//! the weights a demand-balanced shard map bin-packs.

use dmx_core::LockId;
use dmx_simnet::Time;
use dmx_topology::NodeId;

/// SplitMix64 finalizer: the avalanche stage used as the counter-based
/// hash behind jitter and node choice.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded pseudo-random bijection on `0..keys`: 4-round Feistel over
/// the smallest even-split bit domain covering the key space, with
/// cycle-walking for non-power-of-two sizes (walking a permutation from
/// an in-domain point always terminates on an in-domain point). Pure in
/// `(key, keys, seed)`.
fn permute(key: u32, keys: u32, seed: u64) -> u32 {
    debug_assert!(key < keys);
    let bits = 32 - keys.saturating_sub(1).leading_zeros();
    let w = bits.div_ceil(2).max(1);
    let mask: u32 = (1 << w) - 1;
    let mut x = key;
    loop {
        let (mut l, mut r) = (x >> w, x & mask);
        for round in 0..4u64 {
            let f = (mix(seed ^ (round << 56) ^ u64::from(r)) as u32) & mask;
            (l, r) = (r, l ^ f);
        }
        x = (l << w) | r;
        if x < keys {
            return x;
        }
    }
}

/// How per-key demand volume is distributed over the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyLoad {
    /// Every key's burst is the configured width — the original paced
    /// shape, and the default.
    Uniform,
    /// A key of zipf *rank* `r` (rank = seeded permutation of the key
    /// id) gets a burst scaled by `(r + 1)^-exponent`, normalized so
    /// the total request volume stays `≈ keys × burst × rounds`. Rank
    /// 0's burst is the widest; [`PacedKeyDemand::with_load`] rejects
    /// configurations where it would not fit inside `spacing`.
    Zipf {
        /// The zipf exponent (must be finite and positive).
        exponent: f64,
    },
}

/// Open-loop, per-key pinned demand: `rounds` jittered bursts for every
/// key in `0..keys`, over `nodes` issuing nodes. See the
/// [module docs](self) for why the parallel runtime needs this shape
/// and how [`KeyLoad`] skews it.
///
/// # Examples
///
/// ```
/// use dmx_core::LockId;
/// use dmx_workload::{KeyLoad, PacedKeyDemand};
///
/// let d = PacedKeyDemand::new(16, 8, 100, 2, 3, 42);
/// let arrivals: Vec<_> = d.arrivals(LockId(5)).collect();
/// assert_eq!(arrivals.len() as u64, d.requests_for(LockId(5)));
/// // Strictly increasing per key, every issuer in range.
/// for pair in arrivals.windows(2) {
///     assert!(pair[0].0 < pair[1].0);
/// }
/// # assert!(arrivals.iter().all(|&(_, n)| n.index() < 8));
///
/// // A zipf load skews per-key volume; the profile exports it.
/// let z = PacedKeyDemand::new(16, 8, 100, 2, 3, 42)
///     .with_load(KeyLoad::Zipf { exponent: 1.1 });
/// let profile = z.demand_profile();
/// assert_eq!(profile.len(), 16);
/// assert!(profile.iter().max() > profile.iter().min());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacedKeyDemand {
    keys: u32,
    nodes: usize,
    spacing: u64,
    burst: u64,
    rounds: u64,
    seed: u64,
    load: KeyLoad,
    /// Precomputed `Σ (r + 1)^-exponent` over all ranks (1.0 per key
    /// under [`KeyLoad::Uniform`], where it is never read).
    total_weight: f64,
    /// Probability that an arrival is issued by its key's home node
    /// (0 = the unbiased default; the uniform-issuer path is untouched).
    affinity: f64,
}

impl PacedKeyDemand {
    /// A demand over `keys` keys and `nodes` nodes: per key, `rounds`
    /// bursts of `burst` requests, one burst per `spacing`-tick round.
    ///
    /// # Panics
    ///
    /// Panics when `keys`, `nodes`, `burst`, or `rounds` is zero, or
    /// when `spacing <= burst` (rounds would overlap and per-key
    /// arrival times would no longer be strictly increasing).
    pub fn new(keys: u32, nodes: usize, spacing: u64, burst: u64, rounds: u64, seed: u64) -> Self {
        assert!(keys > 0, "paced demand needs at least one key");
        assert!(nodes > 0, "paced demand needs at least one node");
        assert!(burst > 0 && rounds > 0, "paced demand needs requests");
        assert!(
            spacing > burst,
            "spacing ({spacing}) must exceed burst ({burst}) so rounds never overlap"
        );
        PacedKeyDemand {
            keys,
            nodes,
            spacing,
            burst,
            rounds,
            seed,
            load: KeyLoad::Uniform,
            total_weight: keys as f64,
            affinity: 0.0,
        }
    }

    /// Installs a [`KeyLoad`]; under [`KeyLoad::Uniform`] every stream
    /// is bit-identical to the unadorned constructor's.
    ///
    /// # Panics
    ///
    /// Panics on a non-finite or non-positive zipf exponent, or when
    /// the hottest rank's scaled burst would not fit strictly inside
    /// `spacing` (per-key arrivals would stop increasing).
    pub fn with_load(mut self, load: KeyLoad) -> Self {
        if let KeyLoad::Zipf { exponent } = load {
            assert!(
                exponent.is_finite() && exponent > 0.0,
                "zipf exponent must be finite and positive, got {exponent}"
            );
            self.total_weight = (0..self.keys)
                .map(|r| f64::from(r + 1).powf(-exponent))
                .sum();
            self.load = load;
            let widest = self.burst_for_rank(0);
            assert!(
                widest < self.spacing,
                "hottest key's burst ({widest}) must fit strictly inside \
                 spacing ({}); widen spacing or shrink burst",
                self.spacing
            );
        } else {
            self.load = load;
            self.total_weight = self.keys as f64;
        }
        self
    }

    /// Issues `affinity` of every key's demand from the key's
    /// [`home`](PacedKeyDemand::home) node — the hot-tenant shape. 0
    /// (the default) leaves issuers globally uniform, bit-identical to
    /// the unbiased stream.
    ///
    /// # Panics
    ///
    /// Panics when `affinity` is outside `[0, 1]`.
    pub fn with_home_affinity(mut self, affinity: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&affinity),
            "home affinity is a probability; got {affinity}"
        );
        self.affinity = affinity;
        self
    }

    /// Number of keys in the demand (`0..keys`).
    pub fn keys(&self) -> u32 {
        self.keys
    }

    /// Number of issuing nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// `key`'s zipf rank under the seeded permutation (the identity for
    /// [`KeyLoad::Uniform`]). Rank 0 is the hottest.
    pub fn rank_of(&self, key: LockId) -> u32 {
        match self.load {
            KeyLoad::Uniform => key.0,
            KeyLoad::Zipf { .. } => permute(key.0, self.keys, self.seed),
        }
    }

    /// Burst width for a given rank.
    fn burst_for_rank(&self, rank: u32) -> u64 {
        match self.load {
            KeyLoad::Uniform => self.burst,
            KeyLoad::Zipf { exponent } => {
                let weight = f64::from(rank + 1).powf(-exponent);
                let scaled =
                    (self.burst as f64 * self.keys as f64 * weight / self.total_weight).round();
                (scaled as u64).max(1)
            }
        }
    }

    /// `key`'s burst width — `burst` uniform, rank-scaled under zipf.
    pub fn burst_for(&self, key: LockId) -> u64 {
        self.burst_for_rank(self.rank_of(key))
    }

    /// Requests `key` receives over the whole run.
    pub fn requests_for(&self, key: LockId) -> u64 {
        self.rounds * self.burst_for(key)
    }

    /// Total requests across the key space.
    pub fn total_requests(&self) -> u64 {
        (0..self.keys).map(|k| self.requests_for(LockId(k))).sum()
    }

    /// Per-key request counts — the demand weights a balanced shard map
    /// bin-packs (the paced analogue of
    /// [`KeyedAffinity::hub_profile`](crate::KeyedAffinity::hub_profile)'s
    /// per-key profile machinery).
    pub fn demand_profile(&self) -> Vec<u64> {
        (0..self.keys)
            .map(|k| self.requests_for(LockId(k)))
            .collect()
    }

    /// `key`'s home node — where
    /// [`with_home_affinity`](PacedKeyDemand::with_home_affinity)'s
    /// share of its demand originates. A pure key hash, deliberately
    /// unrelated to `key % n` (like
    /// [`KeyedAffinity::home`](crate::KeyedAffinity::home)).
    pub fn home(&self, key: LockId) -> NodeId {
        NodeId((mix(0x486F_6D65 ^ (u64::from(key.0) + 1)) % self.nodes as u64) as u32)
    }

    /// The per-key hottest-node map, for `Placement::Profile`-style hub
    /// seeding on hot-tenant cells.
    pub fn hub_profile(&self) -> Vec<NodeId> {
        (0..self.keys).map(|k| self.home(LockId(k))).collect()
    }

    /// Exclusive upper bound on arrival times: every arrival of every
    /// key lands strictly before this tick.
    pub fn horizon(&self) -> Time {
        Time(self.rounds * self.spacing)
    }

    /// The `i`-th arrival for `key` (0-based over
    /// [`requests_for`](PacedKeyDemand::requests_for)), as `(time,
    /// issuing node)`. Pure in `(self, key, i)`.
    ///
    /// Round `r`'s burst starts at `r * spacing` plus a per-`(key,
    /// round)` jitter bounded by `spacing - burst_for(key)`, so
    /// consecutive arrivals of one key are strictly increasing: request
    /// `j` of a burst lands `j` ticks after its start, and the latest
    /// possible burst end stays short of round `r + 1`'s earliest
    /// start.
    pub fn arrival(&self, key: LockId, i: u64) -> (Time, NodeId) {
        debug_assert!(i < self.requests_for(key));
        let burst = self.burst_for(key);
        let (r, j) = (i / burst, i % burst);
        let h = mix(self
            .seed
            .wrapping_add((key.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407))
            .wrapping_add(r.wrapping_mul(0x9FB2_1C65_1E98_DF25)));
        let jit_span = self.spacing - burst;
        let at = r * self.spacing + h % jit_span + j;
        let hn = mix(h.wrapping_add((j + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93)));
        let node = if self.affinity > 0.0
            && ((mix(hn ^ 0xAFF1_7E5A_17ED_0042) >> 11) as f64)
                < self.affinity * (1u64 << 53) as f64
        {
            self.home(key).index()
        } else {
            hn as usize % self.nodes
        };
        (Time(at), NodeId::from_index(node))
    }

    /// All arrivals for `key`, in time order.
    pub fn arrivals(&self, key: LockId) -> impl Iterator<Item = (Time, NodeId)> + '_ {
        (0..self.requests_for(key)).map(move |i| self.arrival(key, i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_key_arrivals_are_strictly_increasing_and_in_range() {
        let d = PacedKeyDemand::new(37, 11, 50, 4, 6, 0xFEED);
        for k in 0..37 {
            let arrivals: Vec<_> = d.arrivals(LockId(k)).collect();
            assert_eq!(arrivals.len() as u64, d.requests_for(LockId(k)));
            for pair in arrivals.windows(2) {
                assert!(pair[0].0 < pair[1].0, "key {k}: {:?}", pair);
            }
            let last = arrivals.last().unwrap().0;
            assert!(last < d.horizon(), "key {k} ran past the horizon");
            assert!(arrivals.iter().all(|&(_, n)| n.index() < 11));
        }
    }

    #[test]
    fn arrivals_are_pure_functions_of_the_coordinates() {
        // The shard-invariance property at its root: key 9's stream
        // does not depend on any other key existing at all.
        let wide = PacedKeyDemand::new(1024, 16, 40, 2, 5, 7);
        let narrow = PacedKeyDemand::new(10, 16, 40, 2, 5, 7);
        let w: Vec<_> = wide.arrivals(LockId(9)).collect();
        let n: Vec<_> = narrow.arrivals(LockId(9)).collect();
        assert_eq!(w, n);
        // And re-queries reproduce exactly.
        assert_eq!(w, wide.arrivals(LockId(9)).collect::<Vec<_>>());
    }

    #[test]
    fn seeds_and_keys_decorrelate_streams() {
        let a = PacedKeyDemand::new(64, 8, 100, 3, 4, 1);
        let b = PacedKeyDemand::new(64, 8, 100, 3, 4, 2);
        assert_ne!(
            a.arrivals(LockId(0)).collect::<Vec<_>>(),
            b.arrivals(LockId(0)).collect::<Vec<_>>(),
            "different seeds must jitter differently"
        );
        assert_ne!(
            a.arrivals(LockId(0)).collect::<Vec<_>>(),
            a.arrivals(LockId(1)).collect::<Vec<_>>(),
            "different keys must jitter differently"
        );
    }

    #[test]
    fn uniform_load_is_bit_identical_to_the_plain_constructor() {
        let plain = PacedKeyDemand::new(64, 8, 100, 3, 4, 9);
        let loaded = PacedKeyDemand::new(64, 8, 100, 3, 4, 9)
            .with_load(KeyLoad::Uniform)
            .with_home_affinity(0.0);
        for k in [0u32, 7, 63] {
            assert_eq!(
                plain.arrivals(LockId(k)).collect::<Vec<_>>(),
                loaded.arrivals(LockId(k)).collect::<Vec<_>>(),
                "key {k} stream moved"
            );
        }
    }

    #[test]
    fn zipf_rank_permutation_is_a_seeded_bijection() {
        for keys in [1u32, 7, 64, 100, 4096] {
            let mut seen = vec![false; keys as usize];
            for k in 0..keys {
                let r = permute(k, keys, 42);
                assert!(r < keys, "rank {r} out of range for {keys} keys");
                assert!(!seen[r as usize], "rank {r} assigned twice ({keys} keys)");
                seen[r as usize] = true;
            }
        }
        // Seeds move the permutation.
        let a: Vec<u32> = (0..64).map(|k| permute(k, 64, 1)).collect();
        let b: Vec<u32> = (0..64).map(|k| permute(k, 64, 2)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zipf_load_skews_bursts_and_preserves_the_stream_contract() {
        let d = PacedKeyDemand::new(64, 11, 200, 2, 5, 0xFEED)
            .with_load(KeyLoad::Zipf { exponent: 1.1 });
        let profile = d.demand_profile();
        assert_eq!(profile.len(), 64);
        let (min, max) = (profile.iter().min(), profile.iter().max());
        assert!(max > min, "zipf must skew per-key volume: {profile:?}");
        // The hottest rank's burst fits, total volume stays near keys ×
        // burst × rounds, and every stream still increases strictly.
        assert!(d.burst_for_rank(0) < 200);
        let total = d.total_requests();
        assert!(
            (total as f64) > 0.8 * 64.0 * 2.0 * 5.0 && (total as f64) < 1.6 * 64.0 * 2.0 * 5.0,
            "total volume drifted: {total}"
        );
        for k in 0..64 {
            let arrivals: Vec<_> = d.arrivals(LockId(k)).collect();
            assert_eq!(arrivals.len() as u64, d.requests_for(LockId(k)));
            for pair in arrivals.windows(2) {
                assert!(pair[0].0 < pair[1].0, "key {k}: {:?}", pair);
            }
            assert!(arrivals.last().unwrap().0 < d.horizon());
        }
    }

    #[test]
    fn home_affinity_concentrates_issuers_without_moving_times() {
        let base = PacedKeyDemand::new(16, 11, 100, 4, 8, 3);
        let hot = base.with_home_affinity(0.9);
        let mut at_home = 0u64;
        let mut total = 0u64;
        for k in 0..16 {
            let key = LockId(k);
            let home = hot.home(key);
            for (i, ((tb, _), (th, nh))) in base.arrivals(key).zip(hot.arrivals(key)).enumerate() {
                assert_eq!(tb, th, "key {k} arrival {i}: affinity moved a time");
                total += 1;
                at_home += u64::from(nh == home);
            }
        }
        let share = at_home as f64 / total as f64;
        assert!(
            share > 0.75,
            "0.9 affinity must concentrate issuers at home (got {share:.2})"
        );
    }

    #[test]
    #[should_panic(expected = "spacing (3) must exceed burst (3)")]
    fn overlapping_rounds_are_rejected() {
        PacedKeyDemand::new(1, 1, 3, 3, 1, 0);
    }

    #[test]
    #[should_panic(expected = "must fit strictly inside spacing")]
    fn zipf_burst_overflowing_spacing_is_rejected() {
        // 64 keys at exponent 1.1: rank 0 scales burst ~16×, far past
        // a 10-tick spacing.
        PacedKeyDemand::new(64, 4, 10, 2, 1, 0).with_load(KeyLoad::Zipf { exponent: 1.1 });
    }

    #[test]
    #[should_panic(expected = "zipf exponent must be finite and positive")]
    fn bad_zipf_exponent_is_rejected() {
        PacedKeyDemand::new(4, 4, 100, 2, 1, 0).with_load(KeyLoad::Zipf { exponent: -1.0 });
    }

    #[test]
    #[should_panic(expected = "home affinity is a probability")]
    fn bad_affinity_is_rejected() {
        PacedKeyDemand::new(4, 4, 100, 2, 1, 0).with_home_affinity(1.5);
    }
}
