//! Client session scripts: one lock-client program, many substrates.
//!
//! A [`Script`] is a *global sequence* of lock-client steps — acquire
//! (wait / try / timeout / deadline, one key or a sorted multi-key
//! set) and release — each attributed to a node. The same script runs
//!
//! * under the deterministic simulator (`dmx-lockspace`'s
//!   `ScriptedClient`, step `i` issued at tick `i × spacing`,
//!   timeouts driven through the engine's `wake_at` timers), and
//! * against the threaded/TCP clusters (`dmx-runtime`'s `run_script`,
//!   step `i` gated on step `i − 1` completing, timeouts on the wall
//!   clock),
//!
//! producing one [`Outcome`] per acquire step. On well-formed scripts
//! the outcome vectors must be identical — that is the sim-parity
//! contract `tests/runtime_vs_sim.rs` pins.
//!
//! # Well-formedness
//!
//! [`Script::validate`] enforces the structural rules (nodes and keys
//! in range, non-empty key sets, and per-node alternation: every
//! acquire is followed by that node's release before its next
//! acquire — a client holds at most one guard at a time, which is
//! exactly what the runtime's `&mut`-borrowing guards enforce at
//! compile time). One rule is semantic and stays with the author:
//! because steps are globally sequenced, a *waiting* acquire must
//! never target a key whose current holder releases only in a later
//! step — both executors would stall (the simulator past its step
//! spacing, the threaded driver forever).
//!
//! # Examples
//!
//! ```
//! use dmx_core::LockId;
//! use dmx_simnet::Time;
//! use dmx_topology::NodeId;
//! use dmx_workload::Script;
//!
//! let script = Script::new()
//!     .lock(NodeId(1), LockId(0))            // granted
//!     .try_lock(NodeId(2), LockId(0))        // would block: node 1 holds
//!     .release(NodeId(2))                    // no-op: nothing was granted
//!     .release(NodeId(1))
//!     .lock_many(NodeId(2), &[LockId(0), LockId(1)])
//!     .release(NodeId(2));
//! script.validate(3, 2);
//! assert_eq!(script.len(), 6);
//! ```

use dmx_core::LockId;
use dmx_simnet::Time;
use dmx_topology::NodeId;

/// How an acquire step waits for its grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireMode {
    /// Block until granted.
    Wait,
    /// Grant only if every requested key's token is locally available
    /// right now; otherwise fail with [`Outcome::WouldBlock`] without
    /// sending any protocol message.
    Try,
    /// Block up to a window of this many ticks (the threaded executor
    /// scales ticks to wall-clock durations), then give up with
    /// [`Outcome::TimedOut`].
    Timeout(Time),
    /// Block until this absolute tick of the session's *logical clock*
    /// — step `i` issues at tick `i ×` [`Script::STEP_TICKS`] on every
    /// substrate — then give up with [`Outcome::DeadlineExceeded`]. A
    /// deadline at or before the issuing step's logical tick has
    /// already elapsed and fails immediately, without acquiring.
    Deadline(Time),
}

/// One step's operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionOp {
    /// Acquire `keys` (all-or-nothing, in sorted [`LockId`] order).
    Acquire {
        /// The requested keys; deduplicated and sorted by the executor.
        keys: Vec<LockId>,
        /// How to wait.
        mode: AcquireMode,
    },
    /// Release whatever this node's preceding acquire still holds
    /// (a no-op when that acquire failed).
    Release,
}

/// One globally-ordered step of a session script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionStep {
    /// The node whose client performs the step.
    pub node: NodeId,
    /// What it does.
    pub op: SessionOp,
}

/// What an acquire step came back with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Every requested key was acquired.
    Granted,
    /// The timeout window elapsed; any partially acquired keys were
    /// rolled back.
    TimedOut,
    /// A [`AcquireMode::Try`] found some key's token remote.
    WouldBlock,
    /// The deadline passed; any partially acquired keys were rolled
    /// back.
    DeadlineExceeded,
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Granted => f.write_str("granted"),
            Outcome::TimedOut => f.write_str("timed out"),
            Outcome::WouldBlock => f.write_str("would block"),
            Outcome::DeadlineExceeded => f.write_str("deadline exceeded"),
        }
    }
}

/// A globally-sequenced lock-client program; see the
/// [module docs](self) for the execution model.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Script {
    steps: Vec<SessionStep>,
}

impl Script {
    /// The logical session clock: step `i` issues at tick
    /// `i × STEP_TICKS` on every substrate. The simulator schedules
    /// steps at exactly these ticks; the threaded executor, whose
    /// steps complete in wall-clock microseconds, evaluates
    /// [`AcquireMode::Deadline`]s against this same logical clock so
    /// outcomes stay substrate-independent. Timeout windows must stay
    /// below it (validated by the executors) to keep steps globally
    /// sequenced.
    pub const STEP_TICKS: u64 = 1_000;

    /// An empty script.
    pub fn new() -> Self {
        Script::default()
    }

    /// Appends a general acquire step.
    pub fn acquire(mut self, node: NodeId, keys: &[LockId], mode: AcquireMode) -> Self {
        self.steps.push(SessionStep {
            node,
            op: SessionOp::Acquire {
                keys: keys.to_vec(),
                mode,
            },
        });
        self
    }

    /// Appends a blocking single-key acquire.
    pub fn lock(self, node: NodeId, key: LockId) -> Self {
        self.acquire(node, &[key], AcquireMode::Wait)
    }

    /// Appends a non-blocking single-key acquire.
    pub fn try_lock(self, node: NodeId, key: LockId) -> Self {
        self.acquire(node, &[key], AcquireMode::Try)
    }

    /// Appends a single-key acquire bounded by a `window`-tick timeout.
    pub fn lock_timeout(self, node: NodeId, key: LockId, window: Time) -> Self {
        self.acquire(node, &[key], AcquireMode::Timeout(window))
    }

    /// Appends a single-key acquire bounded by an absolute session
    /// `deadline`.
    pub fn lock_deadline(self, node: NodeId, key: LockId, deadline: Time) -> Self {
        self.acquire(node, &[key], AcquireMode::Deadline(deadline))
    }

    /// Appends a blocking multi-key acquire (all-or-nothing, sorted
    /// order).
    pub fn lock_many(self, node: NodeId, keys: &[LockId]) -> Self {
        self.acquire(node, keys, AcquireMode::Wait)
    }

    /// Appends a multi-key acquire bounded by a `window`-tick timeout,
    /// rolling every key back on expiry.
    pub fn lock_many_timeout(self, node: NodeId, keys: &[LockId], window: Time) -> Self {
        self.acquire(node, keys, AcquireMode::Timeout(window))
    }

    /// Appends `node`'s release of whatever its last acquire holds.
    pub fn release(mut self, node: NodeId) -> Self {
        self.steps.push(SessionStep {
            node,
            op: SessionOp::Release,
        });
        self
    }

    /// The steps, in global order.
    pub fn steps(&self) -> &[SessionStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` for a script with no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Checks the structural rules against an `n`-node, `keys`-key
    /// service; see the [module docs](self).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range node or key, an empty key set, a
    /// zero-tick timeout window, a release with no preceding acquire,
    /// or two acquires by one node without a release between them (or
    /// after the last one — every grant must be released so the
    /// session can quiesce).
    pub fn validate(&self, n: usize, keys: u32) {
        // Per-node: None = free, Some(step) = an acquire at `step` not
        // yet followed by a release.
        let mut open: Vec<Option<usize>> = vec![None; n];
        for (i, step) in self.steps.iter().enumerate() {
            assert!(
                step.node.index() < n,
                "script step {i}: node {} out of range for {n} nodes",
                step.node
            );
            match &step.op {
                SessionOp::Acquire { keys: set, mode } => {
                    assert!(!set.is_empty(), "script step {i}: empty key set");
                    for key in set {
                        assert!(
                            key.0 < keys,
                            "script step {i}: {key} out of range for {keys} keys"
                        );
                    }
                    if let AcquireMode::Timeout(w) = mode {
                        assert!(w.ticks() > 0, "script step {i}: zero-tick timeout window");
                    }
                    assert!(
                        open[step.node.index()].is_none(),
                        "script step {i}: node {} acquires again without releasing \
                         its step-{} acquire",
                        step.node,
                        open[step.node.index()].unwrap_or_default()
                    );
                    open[step.node.index()] = Some(i);
                }
                SessionOp::Release => {
                    assert!(
                        open[step.node.index()].is_some(),
                        "script step {i}: node {} releases with no open acquire",
                        step.node
                    );
                    open[step.node.index()] = None;
                }
            }
        }
        for (node, o) in open.iter().enumerate() {
            assert!(
                o.is_none(),
                "script ends with node {node}'s step-{} acquire never released",
                o.unwrap_or_default()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_assemble_in_order() {
        let s = Script::new()
            .lock(NodeId(0), LockId(3))
            .release(NodeId(0))
            .try_lock(NodeId(1), LockId(3))
            .release(NodeId(1))
            .lock_timeout(NodeId(2), LockId(0), Time(40))
            .release(NodeId(2))
            .lock_deadline(NodeId(0), LockId(1), Time(9_000))
            .release(NodeId(0))
            .lock_many_timeout(NodeId(1), &[LockId(2), LockId(0)], Time(7))
            .release(NodeId(1));
        s.validate(3, 4);
        assert_eq!(s.len(), 10);
        assert_eq!(
            s.steps()[4].op,
            SessionOp::Acquire {
                keys: vec![LockId(0)],
                mode: AcquireMode::Timeout(Time(40)),
            }
        );
    }

    #[test]
    fn try_release_may_noop_after_a_failed_acquire() {
        // Structurally an acquire + release pair is always valid; the
        // release just no-ops at run time when the acquire failed.
        Script::new()
            .try_lock(NodeId(0), LockId(0))
            .release(NodeId(0))
            .validate(1, 1);
    }

    #[test]
    #[should_panic(expected = "acquires again without releasing")]
    fn double_acquire_is_rejected() {
        Script::new()
            .lock(NodeId(0), LockId(0))
            .lock(NodeId(0), LockId(1))
            .validate(1, 2);
    }

    #[test]
    #[should_panic(expected = "never released")]
    fn unreleased_tail_acquire_is_rejected() {
        Script::new().lock(NodeId(0), LockId(0)).validate(1, 1);
    }

    #[test]
    #[should_panic(expected = "releases with no open acquire")]
    fn orphan_release_is_rejected() {
        Script::new().release(NodeId(0)).validate(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range for 2 keys")]
    fn out_of_range_key_is_rejected() {
        Script::new()
            .lock(NodeId(0), LockId(2))
            .release(NodeId(0))
            .validate(1, 2);
    }

    #[test]
    #[should_panic(expected = "node n5 out of range")]
    fn out_of_range_node_is_rejected() {
        Script::new()
            .lock(NodeId(5), LockId(0))
            .release(NodeId(5))
            .validate(2, 1);
    }

    #[test]
    #[should_panic(expected = "zero-tick timeout window")]
    fn zero_timeout_window_is_rejected() {
        Script::new()
            .lock_timeout(NodeId(0), LockId(0), Time(0))
            .release(NodeId(0))
            .validate(1, 1);
    }

    #[test]
    #[should_panic(expected = "empty key set")]
    fn empty_key_set_is_rejected() {
        Script::new()
            .acquire(NodeId(0), &[], AcquireMode::Wait)
            .release(NodeId(0))
            .validate(1, 1);
    }
}
