//! Every algorithm in the workspace, one table: the Chapter 6
//! comparison, live.
//!
//! Runs all nine algorithms (the paper's DAG algorithm plus its eight
//! historical competitors) on the same saturated star workload and
//! prints messages per entry, waiting time, sync delay, and storage
//! footprint — the four axes the thesis evaluates.
//!
//! Run with: `cargo run --release --example algorithm_faceoff`

use dagmutex::harness::experiments::storage;
use dagmutex::harness::{run_algorithm, Algorithm, Scenario};
use dagmutex::simnet::EngineConfig;
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::Saturated;

fn main() {
    let n = 13; // projective-plane size so Maekawa gets optimal quorums
    let tree = Tree::star(n);
    let scenario = Scenario {
        tree: &tree,
        holder: NodeId(0),
        config: EngineConfig {
            record_trace: false,
            ..EngineConfig::default()
        },
    };

    println!("saturated star, N = {n}: every node requests continuously\n");
    println!(
        "{:<20} {:>14} {:>12} {:>12} {:>12} {:>14}",
        "algorithm", "msgs/entry", "mean wait", "sync delay", "node words", "max msg bytes"
    );
    for algo in Algorithm::ALL {
        let metrics = run_algorithm(algo, &scenario, &mut Saturated::new(4))
            .unwrap_or_else(|e| panic!("{}: {e}", algo.name()));
        let (words, bytes) = storage::measure(algo, n);
        println!(
            "{:<20} {:>14.2} {:>12.1} {:>12} {:>12} {:>14}",
            algo.name(),
            metrics.messages_per_entry(),
            metrics.mean_wait_ticks().unwrap_or(0.0),
            metrics
                .sync_delays
                .iter()
                .map(|s| s.elapsed.ticks())
                .max()
                .unwrap_or(0),
            words,
            bytes,
        );
    }
    println!(
        "\nreading guide: the DAG algorithm matches the centralized scheme's\n\
         message count, beats its hand-off latency (1 vs 2), and is the only\n\
         algorithm whose per-node state (3 words) and message payloads stay\n\
         constant as N grows."
    );
}
