//! Watch the *implicit queue* — the paper's signature idea — form and
//! drain in the simulator.
//!
//! No node and no message stores a waiting queue; instead the queue is
//! the chain of `FOLLOW` pointers starting at the token holder. This
//! example pauses a simulation mid-flight, reconstructs the queue from
//! node states alone, and then confirms the token visits the nodes in
//! exactly that order.
//!
//! Run with: `cargo run --example implicit_queue`

use dagmutex::core::{implicit_queue, token_holder, DagProtocol};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};

fn main() {
    // A binary tree of 7 nodes; the token starts at node 3 (a leaf).
    let tree = Tree::kary(7, 2);
    let holder = NodeId(3);
    let mut engine = Engine::new(
        DagProtocol::cluster(&tree, holder),
        EngineConfig {
            // Long critical sections so several requests pile up.
            cs_duration: LatencyModel::Fixed(Time(60)),
            ..EngineConfig::default()
        },
    );

    // The holder enters, then five other nodes request while it works.
    engine.request_at(Time(0), NodeId(3));
    for (t, node) in [(1u64, 5u32), (2, 0), (3, 6), (5, 1), (8, 4)] {
        engine.request_at(Time(t), NodeId(node));
    }

    // Run until all requests are absorbed into the FOLLOW chain (but the
    // first critical section is still in progress).
    engine.run_until(Time(40)).expect("no violations");

    let states: Vec<_> = engine.nodes().iter().map(|p| p.node().clone()).collect();
    println!("node states at t = {}:", engine.now());
    for node in &states {
        println!(
            "  {}: state {:?}, NEXT = {:?}, FOLLOW = {:?}",
            node.id(),
            node.state(),
            node.next(),
            node.follow()
        );
    }

    let holder_now = token_holder(&states).expect("token is held during the CS");
    let queue = implicit_queue(&states);
    println!("\ntoken holder: {holder_now}");
    println!("implicit queue (following FOLLOW pointers): {queue:?}");

    // Let the run finish and compare the actual grant order.
    let report = engine.run_to_quiescence().expect("run completes");
    let granted: Vec<NodeId> = report.metrics.grant_order();
    println!(
        "actual grant order from the trace:          {:?}",
        &granted[1..]
    );
    assert_eq!(queue, granted[1..], "the implicit queue IS the grant order");
    println!("\nqueue reconstructed from node states matches the realized grant order.");
}
