//! A miniature lock *service*: 64 named locks multiplexed over a
//! 15-node tree, driven by Zipf-skewed traffic — a few hot keys, a long
//! cold tail, like production lock demand.
//!
//! The run pauses mid-flight to show who holds what (and where each hot
//! key's token is parked), then drains and prints the per-key ledger.
//!
//! ```text
//! cargo run --example lock_service
//! ```

use dagmutex::core::LockId;
use dagmutex::lockspace::{LockSpace, LockSpaceConfig, Placement};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::Tree;
use dagmutex::workload::{KeyDist, KeyedThinkTime};

fn main() {
    let tree = Tree::kary(15, 2);
    let keys = 64u32;
    let workload = KeyedThinkTime::new(
        keys,
        KeyDist::Zipf { exponent: 1.2 }, // hot head, cold tail
        LatencyModel::Exponential { mean: Time(4) },
        40, // entries per node
        2024,
    );
    let config = LockSpaceConfig {
        keys,
        placement: Placement::Modulo,
        hold: Time(2),
        batching: true,
        ..LockSpaceConfig::default()
    };
    let (nodes, monitor) = LockSpace::cluster(&tree, config, &workload);
    let mut engine = Engine::new(
        nodes,
        EngineConfig {
            record_trace: false,
            ..EngineConfig::default()
        },
    );

    // Freeze mid-flight and look at the space.
    engine.run_until(Time(200)).expect("clean run");
    println!("== t = {} — who holds what ==", engine.now());
    println!(
        "{} keys currently held (peak so far: {}), {} requests in flight",
        monitor.concurrent_holders(),
        monitor.peak_concurrent_holders(),
        monitor.pending_requests(),
    );
    for key in (0..keys).map(LockId) {
        if let Some(node) = monitor.occupant(key) {
            println!("  {key:>4} held by {node}");
        }
    }

    // Where are the hot tokens parked right now?
    println!("\n== token parking (top 8 keys by grants so far) ==");
    for (key, stats) in monitor.hottest_keys(8) {
        let parked = engine
            .nodes()
            .iter()
            .find(|n| n.token_keys().any(|k| k == key))
            .map(|n| n.id().to_string())
            .unwrap_or_else(|| "in flight".to_string());
        println!(
            "  {key:>4}: {:>3} grants so far, token at {parked}",
            stats.grants
        );
    }

    // Drain the rest and print the ledger.
    engine.run_to_quiescence().expect("clean run");
    monitor
        .check_quiescent()
        .expect("per-key safety + liveness");
    let rollup = monitor.rollup();
    println!(
        "\n== final per-key ledger (top 10 of {} touched) ==",
        rollup.keys_touched
    );
    println!("  key   grants  req-msgs  priv-msgs  mean-wait");
    for (key, stats) in monitor.hottest_keys(10) {
        println!(
            "  {key:>4} {:>7} {:>9} {:>10} {:>9.1}",
            stats.grants,
            stats.request_messages,
            stats.privilege_messages,
            if stats.grants > 0 {
                stats.wait_ticks as f64 / stats.grants as f64
            } else {
                0.0
            },
        );
    }
    println!(
        "\n{} grants over {} keys; {} keyed messages in {} envelopes \
         ({:.0}% batched away); peak concurrency {} keys held at once",
        rollup.grants,
        rollup.keys_touched,
        rollup.messages,
        engine.metrics().messages_total,
        100.0 * (1.0 - engine.metrics().messages_total as f64 / rollup.messages as f64),
        monitor.peak_concurrent_holders(),
    );
}
