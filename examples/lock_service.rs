//! A miniature lock *service*: 64 named locks multiplexed over a
//! 15-node tree, driven by Zipf-skewed traffic — a few hot keys, a long
//! cold tail, like production lock demand.
//!
//! The run pauses mid-flight to show who holds what (and where each hot
//! key's token is parked), then drains and prints the per-key ledger.
//!
//! ```text
//! cargo run --example lock_service
//! cargo run --example lock_service -- --window 16
//! ```
//!
//! `--window <ticks>` runs the service through the transport's
//! Nagle-style coalescing window instead of end-of-tick flushing, and
//! closes with a side-by-side comparison against the end-of-tick run —
//! the latency-vs-envelope-count tradeoff, measured.
//!
//! The run closes with the unified client API's party trick: one
//! session script (lock / try / timeout / multi-key steps) executed
//! twice — under this same deterministic simulator and against a real
//! threaded `LockSpaceCluster` — with identical per-step outcomes.

use std::time::Duration;

use dagmutex::core::LockId;
use dagmutex::lockspace::{
    FlushPolicy, LockSpace, LockSpaceConfig, Placement, ScriptedClient, SessionConfig,
};
use dagmutex::runtime::{run_script, LockSpaceCluster};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{KeyDist, KeyedThinkTime, Script};

/// Parses `--window <ticks>` (None = end-of-tick flushing).
fn window_arg() -> Option<u64> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--window" {
            let ticks = args
                .next()
                .expect("--window needs a tick count")
                .parse()
                .expect("--window takes an integer tick count");
            return Some(ticks);
        }
    }
    None
}

fn make_workload(keys: u32) -> KeyedThinkTime {
    KeyedThinkTime::new(
        keys,
        KeyDist::Zipf { exponent: 1.2 }, // hot head, cold tail
        LatencyModel::Exponential { mean: Time(4) },
        40, // entries per node
        2024,
    )
}

fn main() {
    let tree = Tree::kary(15, 2);
    let keys = 64u32;
    let window = window_arg();
    let flush = match window {
        Some(ticks) => FlushPolicy::Window(ticks),
        None => FlushPolicy::EveryTick,
    };
    let workload = make_workload(keys);
    let config = LockSpaceConfig {
        keys,
        placement: Placement::Modulo,
        hold: Time(2),
        batching: true,
        flush,
        ..LockSpaceConfig::default()
    };
    let (nodes, monitor) = LockSpace::cluster(&tree, config.clone(), &workload);
    let mut engine = Engine::new(
        nodes,
        EngineConfig {
            record_trace: false,
            ..EngineConfig::default()
        },
    );

    // Freeze mid-flight and look at the space.
    engine.run_until(Time(200)).expect("clean run");
    println!("== t = {} — who holds what ==", engine.now());
    println!(
        "{} keys currently held (peak so far: {}), {} requests in flight",
        monitor.concurrent_holders(),
        monitor.peak_concurrent_holders(),
        monitor.pending_requests(),
    );
    for key in (0..keys).map(LockId) {
        if let Some(node) = monitor.occupant(key) {
            println!("  {key:>4} held by {node}");
        }
    }

    // Where are the hot tokens parked right now?
    println!("\n== token parking (top 8 keys by grants so far) ==");
    for (key, stats) in monitor.hottest_keys(8) {
        let parked = engine
            .nodes()
            .iter()
            .find(|n| n.token_keys().any(|k| k == key))
            .map(|n| n.id().to_string())
            .unwrap_or_else(|| "in flight".to_string());
        println!(
            "  {key:>4}: {:>3} grants so far, token at {parked}",
            stats.grants
        );
    }

    // Drain the rest and print the ledger.
    engine.run_to_quiescence().expect("clean run");
    monitor
        .check_quiescent()
        .expect("per-key safety + liveness");
    let rollup = monitor.rollup();
    println!(
        "\n== final per-key ledger (top 10 of {} touched) ==",
        rollup.keys_touched
    );
    println!("  key   grants  req-msgs  priv-msgs  mean-wait");
    for (key, stats) in monitor.hottest_keys(10) {
        println!(
            "  {key:>4} {:>7} {:>9} {:>10} {:>9.1}",
            stats.grants,
            stats.request_messages,
            stats.privilege_messages,
            if stats.grants > 0 {
                stats.wait_ticks as f64 / stats.grants as f64
            } else {
                0.0
            },
        );
    }
    println!(
        "\n{} grants over {} keys; {} keyed messages in {} envelopes \
         ({:.0}% batched away); peak concurrency {} keys held at once",
        rollup.grants,
        rollup.keys_touched,
        rollup.messages,
        engine.metrics().messages_total,
        100.0 * (1.0 - engine.metrics().messages_total as f64 / rollup.messages as f64),
        monitor.peak_concurrent_holders(),
    );

    // With a window requested, rerun the identical demand under
    // end-of-tick flushing and show what the window bought (and cost).
    if let Some(ticks) = window {
        let (nodes, tick_monitor) = LockSpace::cluster(
            &tree,
            LockSpaceConfig {
                flush: FlushPolicy::EveryTick,
                ..config
            },
            &make_workload(keys),
        );
        let mut tick_engine = Engine::new(
            nodes,
            EngineConfig {
                record_trace: false,
                ..EngineConfig::default()
            },
        );
        tick_engine.run_to_quiescence().expect("clean run");
        tick_monitor
            .check_quiescent()
            .expect("per-key safety + liveness");
        let tick_rollup = tick_monitor.rollup();
        println!("\n== the window tradeoff (same demand, two flush policies) ==");
        println!(
            "  end-of-tick: {:>6} envelopes, mean wait {:>6.1} ticks",
            tick_engine.metrics().messages_total,
            tick_rollup.mean_wait_ticks,
        );
        println!(
            "  window {ticks:>4}: {:>6} envelopes, mean wait {:>6.1} ticks",
            engine.metrics().messages_total,
            rollup.mean_wait_ticks,
        );
        let saved = 100.0
            * (1.0
                - engine.metrics().messages_total as f64
                    / tick_engine.metrics().messages_total as f64);
        println!(
            "  → the {ticks}-tick window sends {saved:.0}% fewer envelopes and pays \
             {:+.1} ticks of mean wait",
            rollup.mean_wait_ticks - tick_rollup.mean_wait_ticks,
        );
    }

    session_parity_demo();
}

/// One client program, two substrates, identical outcomes: the same
/// `Script` runs under the deterministic simulator and against a real
/// threaded cluster.
fn session_parity_demo() {
    let tree = Tree::star(5);
    let keys = 16u32;
    let script = Script::new()
        .lock(NodeId(1), LockId(3))
        .try_lock(NodeId(2), LockId(3)) // node 1 holds it: refused
        .release(NodeId(2))
        .lock_timeout(NodeId(3), LockId(3), Time(80)) // still held: expires
        .release(NodeId(3))
        .release(NodeId(1))
        .lock_many(NodeId(2), &[LockId(7), LockId(3), LockId(11)]) // sorted, all-or-nothing
        .release(NodeId(2));

    let config = SessionConfig {
        keys,
        placement: Placement::Modulo,
        ..SessionConfig::default()
    };
    let (nodes, monitor) = ScriptedClient::cluster(&tree, config, &script);
    let mut engine = Engine::new(
        nodes,
        EngineConfig {
            record_trace: false,
            ..EngineConfig::default()
        },
    );
    engine.run_to_quiescence().expect("clean session run");
    let simulated = monitor.finish().expect("per-key safety");

    let (cluster, mut clients) = LockSpaceCluster::start(&tree, keys, Placement::Modulo);
    let threaded = run_script(&mut clients, &script, Duration::from_millis(2));
    drop(clients);
    cluster.shutdown();

    println!("\n== one client program, two substrates ==");
    println!("  step  op                        sim         threads");
    let names = [
        "lock k3 @ n1",
        "try k3 @ n2",
        "release n2",
        "timeout(80) k3 @ n3",
        "release n3",
        "release n1",
        "lock_many {3,7,11} @ n2",
        "release n2",
    ];
    for (i, name) in names.iter().enumerate() {
        let show = |o: &Option<dagmutex::workload::Outcome>| match o {
            Some(o) => o.to_string(),
            None => "-".to_string(),
        };
        println!(
            "  {i:>4}  {name:<24}  {:<10}  {:<10}",
            show(&simulated[i]),
            show(&threaded[i]),
        );
    }
    assert_eq!(simulated, threaded, "sim-parity is the whole point");
    println!("  → outcome vectors identical, per-key safety oracle green");
}
