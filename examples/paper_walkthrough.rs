//! Replays the paper's Figure 2 and Figure 6 worked examples, printing
//! the same per-step variable tables the thesis prints (in the paper's
//! 1-based node numbering), followed by the implicit queue read-off.
//!
//! Run with: `cargo run --example paper_walkthrough`

use dagmutex::harness::experiments::traces;

fn main() {
    println!("=== Figure 2: simple example ===\n");
    for table in traces::fig2() {
        println!("{table}");
    }

    println!("=== Figure 6: complete example ===\n");
    for table in traces::fig6() {
        println!("{table}");
    }

    let queue = traces::fig6_implicit_queue_paper_numbering();
    println!("Implicit waiting queue at step 6g, read by following FOLLOW");
    println!("pointers from the token holder (node 3): {queue:?}");
    println!("The paper: \"the global waiting queue of the system at this");
    println!(
        "point consists of 2, 1, 5\" — matched: {}",
        queue == vec![2, 1, 5]
    );
}
