//! Quickstart: use the DAG algorithm as a real distributed lock.
//!
//! Five worker threads (one per node of a star topology) each increment
//! a shared tally 50 times under the distributed mutex. The token parks
//! wherever it was last used, so a worker on a hot streak pays nothing —
//! visible at the end through a free `try_now` where the token parked.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use dagmutex::core::LockId;
use dagmutex::runtime::Cluster;
use dagmutex::topology::{NodeId, Tree};

fn main() {
    let tree = Tree::star(5);
    println!(
        "topology: star of {} nodes, diameter {}",
        tree.len(),
        tree.diameter()
    );

    let (cluster, clients) = Cluster::start(&tree, NodeId(0));

    let tally = Arc::new(AtomicU64::new(0));
    let inside = Arc::new(AtomicBool::new(false));

    let workers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let tally = Arc::clone(&tally);
            let inside = Arc::clone(&inside);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let guard = client.lock(LockId(0)).wait().expect("cluster is running");
                    // Verify the mutual exclusion guarantee for real:
                    assert!(
                        !inside.swap(true, Ordering::SeqCst),
                        "two nodes in the critical section!"
                    );
                    tally.fetch_add(1, Ordering::Relaxed);
                    inside.store(false, Ordering::SeqCst);
                    drop(guard); // PRIVILEGE moves on (or parks here)
                }
                client
            })
        })
        .collect();
    let mut clients: Vec<_> = workers
        .into_iter()
        .map(|w| w.join().expect("worker finished"))
        .collect();

    // The token parked wherever the last grant landed; exactly one
    // node's try_now succeeds, everyone else is refused for free.
    let parked: Vec<_> = clients
        .iter_mut()
        .filter_map(|c| c.lock(LockId(0)).try_now().ok().map(|g| g.node()))
        .collect();
    assert_eq!(parked.len(), 1, "exactly one node holds the parked token");
    println!("token parked at          : {}", parked[0]);
    drop(clients);

    let stats = cluster.shutdown();
    println!("critical-section entries : {}", stats.entries);
    println!("total protocol messages  : {}", stats.messages_total);
    println!(
        "messages per entry       : {:.2}",
        stats.messages_per_entry()
    );
    println!(
        "(the paper's bound on a star is 3 per entry; token parking under\n\
         contention keeps the average below it)"
    );
    assert_eq!(tally.load(Ordering::Relaxed), 250);
}
