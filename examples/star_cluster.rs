//! The paper's headline scenario: the *centralized* (star) topology,
//! where the DAG algorithm needs at most 3 messages per entry and a
//! single message of synchronization delay — beating both Raymond's
//! tree algorithm (4 / D) and a centralized lock server (3 / 2).
//!
//! This example measures all three side by side on the same star and
//! prints a small comparison, then shows the hotspot effect: a node that
//! re-enters repeatedly keeps the token parked and pays nothing.
//!
//! Run with: `cargo run --example star_cluster`

use dagmutex::harness::{run_algorithm, Algorithm, Scenario};
use dagmutex::simnet::{EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{Hotspot, Saturated};

fn main() {
    let n = 16;
    let tree = Tree::star(n);
    let scenario = Scenario {
        tree: &tree,
        holder: NodeId(1),
        config: EngineConfig {
            record_trace: false,
            ..EngineConfig::default()
        },
    };

    println!("star of {n} nodes, every node cycling through the critical section:\n");
    println!(
        "{:<14} {:>18} {:>22}",
        "algorithm", "messages/entry", "max sync delay (msgs)"
    );
    for algo in [Algorithm::Dag, Algorithm::Raymond, Algorithm::Centralized] {
        let metrics = run_algorithm(algo, &scenario, &mut Saturated::new(6))
            .expect("saturated run completes");
        println!(
            "{:<14} {:>18.2} {:>22}",
            algo.name(),
            metrics.messages_per_entry(),
            metrics
                .sync_delays
                .iter()
                .map(|s| s.elapsed.ticks())
                .max()
                .unwrap_or(0),
        );
    }

    println!("\nhotspot workload (node 7 does 90% of the locking):\n");
    for algo in [
        Algorithm::Dag,
        Algorithm::Centralized,
        Algorithm::SuzukiKasami,
    ] {
        let mut hotspot = Hotspot::new(
            NodeId(7),
            LatencyModel::Fixed(Time(2)),
            LatencyModel::Fixed(Time(400)),
            20,
            99,
        );
        let metrics = run_algorithm(algo, &scenario, &mut hotspot).expect("hotspot run completes");
        println!(
            "{:<14} messages/entry = {:>6.2}   (token parking rewards locality)",
            algo.name(),
            metrics.messages_per_entry()
        );
    }
}
