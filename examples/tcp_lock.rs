//! The distributed lock over real TCP sockets on loopback.
//!
//! Same algorithm, same state machine as the in-process runtime — but
//! every REQUEST and PRIVILEGE actually crosses a socket as the 9-byte
//! frame documented in `dmx_runtime::tcp`. TCP supplies exactly the
//! reliability and per-connection FIFO ordering the paper's network
//! model assumes.
//!
//! Run with: `cargo run --example tcp_lock`

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use dagmutex::core::LockId;
use dagmutex::runtime::tcp::TcpCluster;
use dagmutex::topology::{NodeId, Tree};

fn main() -> std::io::Result<()> {
    let tree = Tree::star(4);
    let (cluster, clients) = TcpCluster::start(&tree, NodeId(0))?;
    for node in tree.nodes() {
        println!("node {node} listening on {}", cluster.addr(node));
    }

    let inside = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(AtomicU64::new(0));
    let started = Instant::now();

    let workers: Vec<_> = clients
        .into_iter()
        .map(|mut client| {
            let inside = Arc::clone(&inside);
            let tally = Arc::clone(&tally);
            std::thread::spawn(move || {
                for _ in 0..25 {
                    let guard = client.lock(LockId(0)).wait().expect("cluster running");
                    assert!(
                        !inside.swap(true, Ordering::SeqCst),
                        "mutual exclusion violated"
                    );
                    tally.fetch_add(1, Ordering::Relaxed);
                    inside.store(false, Ordering::SeqCst);
                    drop(guard);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker done");
    }

    let elapsed = started.elapsed();
    let stats = cluster.shutdown();
    println!("entries            : {}", stats.entries);
    println!("protocol messages  : {}", stats.messages_total);
    println!("messages per entry : {:.2}", stats.messages_per_entry());
    println!("wall clock         : {elapsed:.2?}");
    assert_eq!(tally.load(Ordering::Relaxed), 100);
    Ok(())
}
