//! Renders the DAG's live state as Graphviz DOT at three interesting
//! moments of a contended run: quiescent start, mid-flight with a full
//! implicit queue, and after the dust settles.
//!
//! Pipe any of the emitted blocks through `dot -Tsvg` to get the same
//! kind of picture the paper's figures draw (solid = NEXT, dashed =
//! FOLLOW, double circle = token).
//!
//! Run with: `cargo run --example visualize`

use dagmutex::core::{render, DagProtocol};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};

fn snapshot(engine: &Engine<DagProtocol>, caption: &str) {
    let states: Vec<_> = engine.nodes().iter().map(|p| p.node().clone()).collect();
    println!("// ===== {caption} (t = {}) =====", engine.now());
    println!("{}", render::summary(&states));
    println!("{}", render::to_dot(&states));
}

fn main() {
    let tree = Tree::from_edges(6, &[(0, 1), (1, 2), (3, 2), (4, 1), (5, 3)])
        .expect("the paper's Figure 6 tree");
    let mut engine = Engine::new(
        DagProtocol::cluster(&tree, NodeId(2)),
        EngineConfig {
            cs_duration: LatencyModel::Fixed(Time(40)),
            ..EngineConfig::default()
        },
    );

    snapshot(&engine, "initial configuration: node 2 holds the token");

    // The Figure 6 storyline: holder enters, three others request.
    engine.request_at(Time(0), NodeId(2));
    engine.request_at(Time(1), NodeId(1));
    engine.request_at(Time(3), NodeId(0));
    engine.request_at(Time(3), NodeId(4));
    engine.run_until(Time(30)).expect("no violations");
    snapshot(&engine, "mid-flight: FOLLOW chain = implicit queue");

    engine.run_to_quiescence().expect("completes");
    snapshot(&engine, "quiescent again: token parked at the last user");
}
