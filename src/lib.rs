//! # dagmutex — Neilsen's DAG-based distributed mutual exclusion
//!
//! A full reproduction of *"A DAG-Based Algorithm for Distributed Mutual
//! Exclusion"* (Neilsen, 1989; Neilsen & Mizuno, ICDCS 1991): the
//! algorithm itself, every baseline it is compared against, a
//! deterministic simulator with safety/liveness checkers, a threaded
//! distributed-lock runtime, and a harness regenerating every table and
//! figure of the evaluation chapter.
//!
//! This umbrella crate re-exports the workspace members:
//!
//! * [`core`] — the DAG algorithm ([`core::DagNode`],
//!   [`core::DagProtocol`], [`core::implicit_queue`]).
//! * [`topology`] — trees, orientations, quorum systems.
//! * [`simnet`] — the discrete-event engine, metrics, checkers, traces.
//! * [`baselines`] — Lamport, Ricart–Agrawala, Carvalho–Roucairol,
//!   Suzuki–Kasami, Singhal, Maekawa, Raymond, and a centralized
//!   coordinator.
//! * [`workload`] — request-arrival generators, single-lock and keyed.
//! * [`lockspace`] — the sharded multi-lock service: thousands of
//!   independent DAG-protocol locks multiplexed over one network, with
//!   per-destination batching ([`lockspace::LockSpace`]).
//! * [`runtime`] — the distributed lock over threads + channels
//!   ([`runtime::Cluster`]), loopback TCP ([`runtime::tcp::TcpCluster`]),
//!   or sharded multi-key threads ([`runtime::LockSpaceCluster`]) — all
//!   behind one [`runtime::LockService`] API: RAII guards,
//!   `try_now`/`timeout`/`deadline` request shaping, and deadlock-free
//!   multi-key `lock_many`.
//! * [`harness`] — the per-table experiment drivers.
//!
//! Extras beyond the paper: Graphviz rendering of live protocol state
//! ([`core::render`]), weighted hub-placement optimization
//! ([`topology::placement`]), and message-loss fault injection
//! ([`simnet::EngineConfig`]'s `drop_rate`).
//!
//! # Quickstart
//!
//! Take the distributed lock on a 5-node star:
//!
//! ```
//! use dagmutex::core::LockId;
//! use dagmutex::runtime::Cluster;
//! use dagmutex::topology::{NodeId, Tree};
//!
//! let (cluster, mut clients) = Cluster::start(&Tree::star(5), NodeId(0));
//! {
//!     let _guard = clients[3].lock(LockId(0)).wait()?;
//!     // critical section: the token (PRIVILEGE) is at node 3
//! }
//! // The token parked at node 3, so reentry is free — and `try_now`
//! // proves it without sending a single message.
//! assert!(clients[3].lock(LockId(0)).try_now().is_ok());
//! let stats = cluster.shutdown();
//! assert_eq!(stats.entries, 2);
//! # Ok::<(), dagmutex::runtime::LockError>(())
//! ```
//!
//! Or measure it in the simulator, as the experiments do:
//!
//! ```
//! use dagmutex::core::DagProtocol;
//! use dagmutex::simnet::{Engine, EngineConfig, Time};
//! use dagmutex::topology::{NodeId, Tree};
//!
//! let nodes = DagProtocol::cluster(&Tree::star(5), NodeId(1));
//! let mut engine = Engine::new(nodes, EngineConfig::default());
//! engine.request_at(Time(0), NodeId(2));
//! let report = engine.run_to_quiescence()?;
//! assert_eq!(report.metrics.messages_total, 3); // the paper's bound
//! # Ok::<(), dagmutex::simnet::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dmx_baselines as baselines;
pub use dmx_core as core;
pub use dmx_harness as harness;
pub use dmx_lockspace as lockspace;
pub use dmx_runtime as runtime;
pub use dmx_simnet as simnet;
pub use dmx_topology as topology;
pub use dmx_workload as workload;
