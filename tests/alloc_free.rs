//! Proves the zero-allocation properties this repo's hot paths claim:
//! with tracing off and capacity warmed up, steady-state closed loops
//! perform **zero heap allocations** across 10,000 engine steps — for
//! the DAG algorithm (PR 1's tentpole), for the ported buffered-handler
//! baselines (Suzuki–Kasami, Raymond, Ricart–Agrawala), for the
//! multiplexed `dmx-lockspace` hot path with batching on (PR 2's
//! tentpole), and all of it under **both** scheduler backends — the
//! binary heap and the timing wheel (PR 3's tentpole; see
//! `dmx_simnet::sched`).
//!
//! A counting global allocator wraps the system allocator; each phase
//! warms its engine up (letting every buffer — outboxes, scratch
//! buffers, lock tables, batch pools — reach steady-state capacity),
//! snapshots the allocation counter, drives 10,000 more steps, and
//! asserts the counter did not move.
//!
//! Run as `cargo test --test alloc_free` like any other test; it is a
//! no-harness test target, which keeps the process single-threaded so
//! the global allocation counter observes only the engine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dagmutex::baselines::naimi_thiare::NaimiThiareProtocol;
use dagmutex::baselines::raymond::RaymondProtocol;
use dagmutex::baselines::ricart_agrawala::RicartAgrawalaProtocol;
use dagmutex::baselines::suzuki_kasami::SuzukiKasamiProtocol;
use dagmutex::core::DagProtocol;
use dagmutex::lockspace::{
    FlushPolicy, LeaseConfig, LockSpace, LockSpaceConfig, ParallelConfig, ParallelEngine,
    Placement, ShardMap, WindowPolicy,
};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Protocol, Scheduler, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{KeyDist, KeyLoad, KeyedThinkTime, PacedKeyDemand};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Steps the engine `steps` times, re-requesting immediately whenever a
/// node exits (a saturated closed loop driven from outside the engine).
fn drive<P: Protocol>(engine: &mut Engine<P>, steps: usize) {
    for _ in 0..steps {
        engine
            .step()
            .expect("no violations in a correct protocol")
            .expect("closed loop keeps the queue non-empty");
        if let Some((node, _released)) = engine.take_just_released() {
            engine.request_at(engine.now(), node);
        }
    }
}

const STEPS: usize = 10_000;

/// Warms a saturated single-lock closed loop up, then asserts `STEPS`
/// further steps allocate nothing — under the given scheduler backend.
fn assert_single_lock_alloc_free<P: Protocol>(label: &str, scheduler: Scheduler, nodes: Vec<P>) {
    let n = nodes.len();
    let config = EngineConfig {
        record_trace: false,
        scheduler,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(nodes, config);
    for i in 0..n {
        engine.request_at(Time(0), NodeId::from_index(i));
    }

    // Warm-up: let the queue, outbox, scratch buffers, and per-kind
    // counters reach their steady-state capacity, then reserve room for
    // every grant the measured phase can record.
    drive(&mut engine, 2_000);
    engine.reserve(4 * n, STEPS);

    let before = allocations();
    drive(&mut engine, STEPS);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state Engine::step must not allocate for {label} (got {} \
         allocations over {STEPS} steps)",
        after - before
    );
    println!("alloc_free: {label} ok (0 allocations across {STEPS} steady-state steps)");
}

/// The multiplexed tentpole property: a lock space serving 64 keys with
/// batching on steps allocation-free once its tables, pools, and
/// orientation caches are warm — under the given scheduler backend
/// (same-tick flush wakes make the lock space the wheel's densest
/// workload) and the given transport flush policy (a coalescing window
/// holds bigger batches in the transport's persistent buffers, which
/// must still reach a steady capacity).
///
/// Every grant records its request→grant wait into the fixed-bucket
/// latency [`Histogram`](dagmutex::simnet::metrics::Histogram) — the
/// percentile machinery is *always on*, so this phase also proves that
/// recording is allocation-free. With `trace_paths` set, per-request DAG
/// hop counting feeds a second histogram from pre-sized per-origin
/// slots, which must be just as free.
fn assert_lockspace_alloc_free(
    scheduler: Scheduler,
    flush: FlushPolicy,
    trace_paths: bool,
    lease: LeaseConfig,
) {
    let n = 15;
    let tree = Tree::kary(n, 2);
    // Saturated keyed closed loop: think time zero, enough rounds that
    // the measured window never exhausts a stream.
    let workload = KeyedThinkTime::new(
        64,
        KeyDist::Zipf { exponent: 1.1 },
        LatencyModel::Fixed(Time(0)),
        1_000_000,
        7,
    );
    let config = LockSpaceConfig {
        keys: 64,
        placement: Placement::Modulo,
        hold: Time(1),
        batching: true,
        flush,
        trace_paths,
        lease,
        ..LockSpaceConfig::default()
    };
    let (nodes, monitor) = LockSpace::cluster(&tree, config, &workload);
    let engine_config = EngineConfig {
        record_trace: false,
        scheduler,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(nodes, engine_config);

    // Warm-up: materialize every (node, key) pair the streams reach,
    // grow every lock table shard, batch pool, and staging buffer to
    // steady state. Cold Zipf-tail keys keep materializing for a while,
    // so warm in rounds until one full measurement window passes without
    // a single allocation — if the multiplexed hot path allocated
    // per-step, no window would ever be quiet and the assertion below
    // would fail.
    engine.reserve(64 * n, 0);
    let mut quiet_after_rounds = None;
    let mut quiet_recorded = 0;
    for round in 0..20 {
        let before = allocations();
        let waits_before = monitor.wait_histogram().count();
        for _ in 0..STEPS {
            engine
                .step()
                .expect("no violations")
                .expect("saturated lock space never quiesces early");
        }
        if allocations() == before {
            quiet_after_rounds = Some(round);
            quiet_recorded = monitor.wait_histogram().count() - waits_before;
            break;
        }
    }

    assert!(monitor.violation().is_none(), "per-key safety held");
    assert!(
        monitor.rollup().grants > 0 && engine.metrics().kind_count("BATCH") > 0,
        "the measured window must exercise real multiplexed batching"
    );
    // The quiet window was not idle on the observability side: waits
    // kept landing in the histogram (and hop counts, when tracing) with
    // the allocation counter frozen.
    assert!(
        quiet_recorded > 0,
        "the allocation-free window must record request→grant waits"
    );
    let rollup = monitor.rollup();
    assert!(
        rollup.p50_wait_ticks <= rollup.p99_wait_ticks
            && rollup.p99_wait_ticks <= rollup.p999_wait_ticks,
        "percentiles must be ordered"
    );
    if trace_paths {
        assert!(
            monitor.path_histogram().count() > 0,
            "path tracing must have recorded hop counts"
        );
    }
    if lease.enabled() {
        // The zipf hot keys re-grant locally: the leased release path
        // (stream peek, fairness check, local re-enter, wake push) ran
        // inside the allocation-free window.
        assert!(
            monitor.lease_grants() > 0,
            "the lease-enabled phase must serve leased re-grants"
        );
    }
    let rounds = quiet_after_rounds.expect(
        "steady-state multiplexed Engine::step must stop allocating with \
         batching on, but every warm-up window still allocated",
    );
    println!(
        "alloc_free: lockspace ({scheduler:?}, {flush:?}, trace_paths={trace_paths}, \
         lease={}) ok (0 allocations across {STEPS} steady-state steps, \
         {quiet_recorded} waits histogrammed, after {rounds} warm-up rounds)",
        lease.window
    );
}

/// The parallel tick-barrier runtime's claim: once every shard
/// engine's tables, pools, heaps, and the driver's round-scratch
/// buffers are warm, barrier rounds step allocation-free — under any
/// shard map (the LPT table is built once at construction) and any
/// window policy (the adaptive controller is two integer compares on
/// merged counts). Driven through the sequential incremental face
/// ([`ParallelEngine::step_rounds`]): the threaded driver would put
/// worker threads' own warm-up allocations into the process-global
/// counter, and the two drivers share the per-round hot path anyway.
fn assert_parallel_alloc_free(balanced: bool, adaptive: bool) {
    let n = 15;
    let tree = Tree::kary(n, 2);
    // Long-horizon paced zipf demand: every key issues on every round
    // spacing, so no stream drains inside the measured window.
    let demand =
        PacedKeyDemand::new(24, n, 60, 2, 1_000_000, 26).with_load(KeyLoad::Zipf { exponent: 1.1 });
    let shard_map = if balanced {
        ShardMap::balanced(demand.demand_profile())
    } else {
        ShardMap::Modulo
    };
    let window = if adaptive {
        WindowPolicy::Adaptive {
            min: 64,
            max: 4_096,
            target: 512,
        }
    } else {
        WindowPolicy::Fixed(64)
    };
    let mut engine = ParallelEngine::new(
        &tree,
        demand,
        ParallelConfig {
            shards: 4,
            shard_map,
            window,
            hold: Time(2),
            record_grants: false,
            // Local arrival-queue depth keeps setting sporadic new
            // records (and reallocating a VecDeque) long after every
            // other buffer plateaus; pre-size far past the realistic
            // depth for this cell (observed max: 4).
            queue_capacity: 32,
            ..ParallelConfig::default()
        },
    );

    // Warm in rounds until one full window of barrier rounds passes
    // without a single allocation — lazily-materialized (node, key)
    // state and growing scratch capacity quiet down after a few.
    const BARRIER_ROUNDS: u64 = 2_000;
    let mut quiet_after_rounds = None;
    // The balanced map packs hot keys apart, so its shards see
    // different depth records on different schedules — it quiets
    // later than the modulo map (observed: 14 modulo, 37 balanced).
    for round in 0..64 {
        let before = allocations();
        assert!(
            engine.step_rounds(BARRIER_ROUNDS),
            "the demand horizon must outlast the measurement"
        );
        if allocations() == before {
            quiet_after_rounds = Some(round);
            break;
        }
    }
    let rounds = quiet_after_rounds.expect(
        "steady-state parallel barrier rounds must stop allocating, \
         but every warm-up window still allocated",
    );

    let report = engine.finish();
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(
        report.grants > 0 && report.windows >= BARRIER_ROUNDS,
        "the measured window must serve real grants across real barriers"
    );
    println!(
        "alloc_free: parallel (map={}, window={}) ok (0 allocations across \
         {BARRIER_ROUNDS} steady-state barrier rounds, after {rounds} warm-up rounds)",
        if balanced { "balanced" } else { "modulo" },
        if adaptive { "adaptive" } else { "fixed" },
    );
}

/// A plain `main` instead of `#[test]` (`harness = false` in
/// Cargo.toml): the libtest harness runs extra threads whose own
/// allocations land in the process-global counter and flake the
/// zero-allocation assertion. Single-threaded, the count is exact and
/// deterministic.
fn main() {
    // Phase 0, sanity: the counter works, and a *tracing* run allocates.
    {
        let tree = Tree::star(4);
        let mut engine = Engine::new(
            DagProtocol::cluster(&tree, NodeId(0)),
            EngineConfig::default(),
        );
        engine.request_at(Time(0), NodeId(2));
        let before = allocations();
        engine.run_to_quiescence().expect("clean run");
        assert!(allocations() > before, "tracing run must allocate");
        assert!(!engine.trace().is_empty());
    }

    let n = 15;
    let tree = Tree::kary(n, 2);
    // Phases 1–2 run under both scheduler backends: the default config
    // auto-selects the wheel, so the heap needs an explicit request to
    // stay covered (and vice versa if Auto's heuristic ever changes).
    for scheduler in [Scheduler::Heap, Scheduler::Wheel] {
        let tag = |label: &str| format!("{label} ({scheduler:?})");
        // Phase 1: the DAG algorithm (PR 1's tentpole property).
        assert_single_lock_alloc_free(
            &tag("dag"),
            scheduler,
            DagProtocol::cluster(&tree, NodeId(0)),
        );
        // Phase 2: the ported buffered-handler baselines.
        assert_single_lock_alloc_free(
            &tag("suzuki-kasami"),
            scheduler,
            SuzukiKasamiProtocol::cluster(n, NodeId(0)),
        );
        assert_single_lock_alloc_free(
            &tag("raymond"),
            scheduler,
            RaymondProtocol::cluster(&tree, NodeId(0)),
        );
        assert_single_lock_alloc_free(
            &tag("ricart-agrawala"),
            scheduler,
            RicartAgrawalaProtocol::cluster(n),
        );
        // The Naimi–Thiare quorum port: sequential LOCK/LOCKED climbs
        // and FIFO arbiter queues must reuse their buffers like every
        // other `*_into` baseline.
        assert_single_lock_alloc_free(
            &tag("naimi-thiare"),
            scheduler,
            NaimiThiareProtocol::cluster(n),
        );
        // Phase 3: the multiplexed lock-space hot path, batching on —
        // under end-of-tick flushing and under a 4-tick coalescing
        // window (the transport layer's Nagle path must be just as
        // allocation-free as its same-tick path). Wait histograms are
        // always on; the third variant adds per-request DAG path
        // tracing, the full observability load; the fourth turns holder
        // leases on, so hot-key local re-grants (stream peek + fairness
        // check + zero-message re-enter) run inside the measured window.
        assert_lockspace_alloc_free(scheduler, FlushPolicy::EveryTick, false, LeaseConfig::OFF);
        assert_lockspace_alloc_free(scheduler, FlushPolicy::Window(4), false, LeaseConfig::OFF);
        assert_lockspace_alloc_free(scheduler, FlushPolicy::EveryTick, true, LeaseConfig::OFF);
        assert_lockspace_alloc_free(
            scheduler,
            FlushPolicy::EveryTick,
            false,
            LeaseConfig::new(8, 16),
        );
    }

    // Phase 4: the parallel tick-barrier runtime — the default modulo
    // map under fixed windows, the demand-balanced LPT map, and the
    // balanced map under the adaptive window controller (this PR's
    // tentpole pair).
    for (balanced, adaptive) in [(false, false), (true, false), (true, true)] {
        assert_parallel_alloc_free(balanced, adaptive);
    }
}
