//! Proves the tentpole property of the zero-allocation refactor: with
//! tracing off and capacity reserved, a steady-state closed loop of the
//! DAG algorithm performs **zero heap allocations** across 10,000 engine
//! steps.
//!
//! A counting global allocator wraps the system allocator; the test
//! warms the engine up (letting every buffer reach steady-state
//! capacity), snapshots the allocation counter, drives 10,000 more
//! steps, and asserts the counter did not move.
//!
//! Run as `cargo test --test alloc_free` like any other test; it is a
//! no-harness test target, which keeps the process single-threaded so
//! the global allocation counter observes only the engine.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dagmutex::core::DagProtocol;
use dagmutex::simnet::{Engine, EngineConfig, Time};
use dagmutex::topology::{NodeId, Tree};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Steps the engine `steps` times, re-requesting immediately whenever a
/// node exits (a saturated closed loop driven from outside the engine).
fn drive(engine: &mut Engine<DagProtocol>, steps: usize) {
    for _ in 0..steps {
        engine
            .step()
            .expect("no violations in a correct protocol")
            .expect("closed loop keeps the queue non-empty");
        if let Some((node, _released)) = engine.take_just_released() {
            engine.request_at(engine.now(), node);
        }
    }
}

/// A plain `main` instead of `#[test]` (`harness = false` in
/// Cargo.toml): the libtest harness runs extra threads whose own
/// allocations land in the process-global counter and flake the
/// zero-allocation assertion. Single-threaded, the count is exact and
/// deterministic.
fn main() {
    // Phase 0, sanity: the counter works, and a *tracing* run allocates.
    {
        let tree = Tree::star(4);
        let mut engine = Engine::new(
            DagProtocol::cluster(&tree, NodeId(0)),
            EngineConfig::default(),
        );
        engine.request_at(Time(0), NodeId(2));
        let before = allocations();
        engine.run_to_quiescence().expect("clean run");
        assert!(allocations() > before, "tracing run must allocate");
        assert!(!engine.trace().is_empty());
    }

    const STEPS: usize = 10_000;
    let n = 15;
    let tree = Tree::kary(n, 2);
    let config = EngineConfig {
        record_trace: false,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(DagProtocol::cluster(&tree, NodeId(0)), config);
    for i in 0..n {
        engine.request_at(Time(0), NodeId::from_index(i));
    }

    // Warm-up: let the queue, outbox, scratch buffers, and per-kind
    // counters reach their steady-state capacity, then reserve room for
    // every grant the measured phase can record.
    drive(&mut engine, 2_000);
    engine.reserve(4 * n, STEPS);

    let before = allocations();
    drive(&mut engine, STEPS);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "steady-state Engine::step must not allocate (got {} allocations \
         over {STEPS} steps)",
        after - before
    );
    println!("alloc_free: ok (0 allocations across {STEPS} steady-state steps)");
}
