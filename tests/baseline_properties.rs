//! Property battery over every baseline algorithm: safety (mutual
//! exclusion) and liveness (all requests granted) under random system
//! sizes, schedules, latencies and seeds — the same guarantees the DAG
//! algorithm is property-tested for in `properties.rs`, so the
//! comparison tables rest on verified implementations on both sides.

use dagmutex::harness::{run_algorithm, Algorithm, Scenario};
use dagmutex::simnet::{EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{SingleShot, ThinkTime};
use proptest::prelude::*;

fn arb_algorithm() -> impl Strategy<Value = Algorithm> {
    prop::sample::select(Algorithm::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// One staggered request per node, random latencies: every algorithm
    /// serves everyone, never violating mutual exclusion (the engine's
    /// checker runs on every event).
    #[test]
    fn every_algorithm_is_safe_and_live(
        algo in arb_algorithm(),
        n in 2usize..12,
        holder in any::<prop::sample::Index>(),
        times in proptest::collection::vec(0u64..30, 12),
        seed in any::<u64>(),
    ) {
        let tree = Tree::star(n);
        let holder = NodeId::from_index(holder.index(n));
        let config = EngineConfig {
            latency: LatencyModel::Exponential { mean: Time(5) },
            cs_duration: LatencyModel::Uniform { lo: Time(1), hi: Time(4) },
            seed,
            record_trace: false,
            ..EngineConfig::default()
        };
        let scenario = Scenario { tree: &tree, holder, config };
        let schedule: Vec<(Time, NodeId)> = (0..n)
            .map(|i| (Time(times[i]), NodeId::from_index(i)))
            .collect();
        let metrics = run_algorithm(algo, &scenario, &mut SingleShot::new(schedule))
            .map_err(|e| {
                TestCaseError::fail(format!("{}: {e}", algo.name()))
            })?;
        prop_assert_eq!(metrics.cs_entries as usize, n);
    }

    /// Closed-loop (think-time) workloads with re-requests also complete,
    /// on random tree topologies for the tree-based algorithms.
    #[test]
    fn closed_loop_workloads_complete(
        algo in arb_algorithm(),
        prufer in proptest::collection::vec(0u32..8, 6), // trees of 8 nodes
        holder in any::<prop::sample::Index>(),
        rounds in 1u32..4,
        seed in any::<u64>(),
    ) {
        let tree = Tree::from_prufer(&prufer);
        let holder = NodeId::from_index(holder.index(tree.len()));
        let config = EngineConfig {
            latency: LatencyModel::Uniform { lo: Time(1), hi: Time(9) },
            seed,
            record_trace: false,
            ..EngineConfig::default()
        };
        let scenario = Scenario { tree: &tree, holder, config };
        let mut workload =
            ThinkTime::new(LatencyModel::Exponential { mean: Time(20) }, rounds, seed);
        let metrics = run_algorithm(algo, &scenario, &mut workload)
            .map_err(|e| TestCaseError::fail(format!("{}: {e}", algo.name())))?;
        prop_assert_eq!(metrics.cs_entries as u64, rounds as u64 * tree.len() as u64);
    }

    /// Message-count sanity across algorithms: nothing exceeds Lamport's
    /// 3(N-1) per entry on an isolated request, and token algorithms
    /// respect their own closed forms.
    #[test]
    fn isolated_request_bounds(
        algo in arb_algorithm(),
        n in 2usize..14,
        requester in any::<prop::sample::Index>(),
        holder in any::<prop::sample::Index>(),
    ) {
        let tree = Tree::star(n);
        let holder = NodeId::from_index(holder.index(n));
        let requester = NodeId::from_index(requester.index(n));
        let cost = dagmutex::harness::experiments::isolated_cost(algo, &tree, holder, requester);
        let k = dagmutex::topology::quorum::QuorumSystem::for_size(n).max_size() as u64;
        let bound = match algo {
            Algorithm::Dag | Algorithm::Centralized => 3,
            Algorithm::Raymond => 4,
            Algorithm::SuzukiKasami | Algorithm::Singhal => n as u64,
            Algorithm::Maekawa | Algorithm::NaimiThiare => 3 * (k - 1),
            Algorithm::Lamport => 3 * (n as u64 - 1),
            Algorithm::RicartAgrawala | Algorithm::CarvalhoRoucairol => 2 * (n as u64 - 1),
        };
        prop_assert!(
            cost <= bound,
            "{}: isolated cost {} exceeds bound {}",
            algo.name(),
            cost,
            bound
        );
    }
}
