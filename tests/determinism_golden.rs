//! Determinism guardrails for the zero-allocation engine refactor and
//! the pluggable scheduling core.
//!
//! Three layers: (1) the same seed must produce bit-identical metrics
//! and traces run-to-run (the property every experiment's
//! reproducibility rests on), (2) a golden snapshot pins the concrete
//! numbers one fixed scenario produces, so a refactor that silently
//! changes event ordering, FIFO clocking, RNG consumption, or metric
//! accounting fails loudly rather than shifting every table by a
//! little, and (3) both scheduler backends — the binary heap and the
//! timing wheel (`dmx_simnet::sched`) — must reproduce the golden
//! scenario **byte-identically**, because the backend is a performance
//! knob and never an observable one.

use dagmutex::core::DagProtocol;
use dagmutex::simnet::{
    Engine, EngineConfig, LatencyModel, RunReport, SchedBackend, Scheduler, Time,
};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::Saturated;

/// The pinned scenario: 13-node ternary tree, exponential latencies,
/// uniform CS durations, saturated closed loop, seed 42, under the
/// given scheduler backend.
fn golden_run_with(scheduler: Scheduler) -> (Engine<DagProtocol>, RunReport) {
    let tree = Tree::kary(13, 3);
    let config = EngineConfig {
        latency: LatencyModel::Exponential { mean: Time(4) },
        cs_duration: LatencyModel::Uniform {
            lo: Time(1),
            hi: Time(5),
        },
        seed: 42,
        scheduler,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(DagProtocol::cluster(&tree, NodeId(6)), config);
    let report = engine
        .run_with_workload(&mut Saturated::new(3))
        .expect("golden run is violation-free");
    (engine, report)
}

fn golden_run() -> (Engine<DagProtocol>, RunReport) {
    golden_run_with(Scheduler::Auto)
}

#[test]
fn identical_seeds_reproduce_metrics_and_trace_exactly() {
    let (engine_a, report_a) = golden_run();
    let (engine_b, report_b) = golden_run();
    assert_eq!(report_a.metrics, report_b.metrics);
    assert_eq!(report_a.final_time, report_b.final_time);
    assert_eq!(engine_a.trace(), engine_b.trace());
}

#[test]
fn heap_and_wheel_backends_reproduce_the_golden_run_byte_identically() {
    let (engine_heap, report_heap) = golden_run_with(Scheduler::Heap);
    let (engine_wheel, report_wheel) = golden_run_with(Scheduler::Wheel);
    assert_eq!(engine_heap.sched_backend(), SchedBackend::Heap);
    assert_eq!(engine_wheel.sched_backend(), SchedBackend::Wheel);

    // The full recorded traces must match event for event.
    assert_eq!(engine_heap.trace(), engine_wheel.trace());
    assert_eq!(report_heap.final_time, report_wheel.final_time);

    // The golden run's Exponential latencies cross block boundaries
    // often enough that the wheel must actually rotate — otherwise this
    // test would not exercise the wheel's promotion paths.
    let mut wheel_metrics = report_wheel.metrics.clone();
    assert!(wheel_metrics.sched_bucket_rotations > 0);

    // All metrics must match except the scheduler's own internals
    // counters (the wheel rotates buckets; the heap by definition never
    // does). Normalize those two fields, then compare the rest wholesale.
    assert_eq!(report_heap.metrics.sched_bucket_rotations, 0);
    assert_eq!(report_heap.metrics.sched_overflow_promotions, 0);
    wheel_metrics.sched_bucket_rotations = 0;
    wheel_metrics.sched_overflow_promotions = 0;
    assert_eq!(report_heap.metrics, wheel_metrics);
}

#[test]
fn auto_selects_the_documented_backend_for_the_golden_scenario() {
    // Exponential latency is heavy-tailed, so Auto resolves to the
    // heap for the golden scenario — while the workspace default
    // (one-tick-per-hop Fixed) resolves to the wheel.
    let (engine, _) = golden_run_with(Scheduler::Auto);
    assert_eq!(engine.sched_backend(), SchedBackend::Heap);
    let default_engine = Engine::new(
        DagProtocol::cluster(&Tree::star(3), NodeId(0)),
        EngineConfig::default(),
    );
    assert_eq!(default_engine.sched_backend(), SchedBackend::Wheel);
}

#[test]
fn golden_snapshot_of_the_pinned_scenario() {
    let (engine, report) = golden_run();
    let m = &report.metrics;

    // 13 nodes × 3 rounds, every request granted.
    assert_eq!(m.requests, 39);
    assert_eq!(m.cs_entries, 39);

    // Pinned observable totals. These values are a function of the
    // engine's event ordering and its (vendored, platform-independent)
    // seeded RNG; any drift means behavior changed and the tables the
    // harness regenerates would drift with it.
    assert_eq!(m.messages_total, GOLDEN_MESSAGES_TOTAL);
    assert_eq!(m.kind_count("REQUEST"), GOLDEN_REQUESTS);
    assert_eq!(m.kind_count("PRIVILEGE"), GOLDEN_PRIVILEGES);
    assert_eq!(m.messages_total, GOLDEN_REQUESTS + GOLDEN_PRIVILEGES);
    assert_eq!(report.final_time, Time(GOLDEN_FINAL_TIME));
    assert_eq!(engine.trace().len(), GOLDEN_TRACE_LEN);
    assert_eq!(m.sync_delays.len(), GOLDEN_SYNC_DELAYS);

    // The PRIVILEGE is empty on the wire (the paper's Chapter 6.4
    // point), so bytes come from REQUESTs alone at 8 bytes each.
    assert_eq!(m.max_message_bytes, 8);
    assert_eq!(m.bytes_total, GOLDEN_REQUESTS * 8);

    // First and last grants, pinned.
    assert_eq!(m.grants.len(), 39);
    assert_eq!(m.grants[0].node, NodeId(GOLDEN_FIRST_GRANT));
    assert_eq!(m.grants[38].node, NodeId(GOLDEN_LAST_GRANT));
    assert!(m.grants.iter().all(|g| g.released_at.is_some()));
}

const GOLDEN_MESSAGES_TOTAL: u64 = 113;
const GOLDEN_REQUESTS: u64 = 76;
const GOLDEN_PRIVILEGES: u64 = 37;
const GOLDEN_FINAL_TIME: u64 = 225;
const GOLDEN_TRACE_LEN: usize = 343;
const GOLDEN_SYNC_DELAYS: usize = 38;
const GOLDEN_FIRST_GRANT: u32 = 6;
const GOLDEN_LAST_GRANT: u32 = 10;
