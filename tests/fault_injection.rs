//! Message-loss fault injection. The paper assumes a reliable network;
//! these tests establish what that assumption buys and that its
//! violation is *detected* by the liveness checker, never silent:
//!
//! * For the DAG algorithm every protocol message is load-bearing — any
//!   lost REQUEST or PRIVILEGE strands a requester (or the token), so a
//!   run with at least one drop must end in a detected starvation.
//! * Suzuki–Kasami's broadcast is partially redundant: a lost REQUEST
//!   copy can be masked by the other N−2 copies, so some lossy runs
//!   still complete — but a lost PRIVILEGE (the token itself) is fatal
//!   and detected.

use dagmutex::baselines::suzuki_kasami::SuzukiKasamiProtocol;
use dagmutex::core::DagProtocol;
use dagmutex::simnet::{Engine, EngineConfig, EngineError, Time};
use dagmutex::topology::{NodeId, Tree};

fn lossy_config(drop_rate: f64, seed: u64) -> EngineConfig {
    EngineConfig {
        drop_rate,
        seed,
        record_trace: false,
        ..EngineConfig::default()
    }
}

#[test]
fn zero_drop_rate_changes_nothing() {
    let tree = Tree::star(6);
    let run = |rate: f64| {
        let mut engine = Engine::new(
            DagProtocol::cluster(&tree, NodeId(0)),
            lossy_config(rate, 5),
        );
        for i in 0..6u32 {
            engine.request_at(Time(0), NodeId(i));
        }
        engine.run_to_quiescence().map(|r| r.metrics.messages_total)
    };
    assert_eq!(run(0.0).unwrap(), run(0.0).unwrap());
}

#[test]
fn every_dag_message_is_load_bearing() {
    let tree = Tree::kary(7, 2);
    let mut lossy_runs = 0;
    for seed in 0..30u64 {
        let mut engine = Engine::new(
            DagProtocol::cluster(&tree, NodeId(3)),
            lossy_config(0.15, seed),
        );
        for i in 0..7u32 {
            engine.request_at(Time(i as u64), NodeId(i));
        }
        let result = engine.run_to_quiescence();
        let dropped = engine.metrics().messages_dropped;
        if dropped > 0 {
            lossy_runs += 1;
            assert!(
                matches!(result, Err(EngineError::Violation(_))),
                "seed {seed}: {dropped} drops went undetected"
            );
        } else {
            result.unwrap_or_else(|e| panic!("seed {seed}: lossless run failed: {e}"));
        }
    }
    assert!(
        lossy_runs >= 10,
        "drop rate too low to exercise the fault path"
    );
}

#[test]
fn total_loss_is_starvation_not_hang() {
    // drop_rate = 1: the very first REQUEST vanishes; the run must end
    // promptly in a detected starvation, not an infinite loop.
    let tree = Tree::line(4);
    let mut engine = Engine::new(DagProtocol::cluster(&tree, NodeId(0)), lossy_config(1.0, 0));
    engine.request_at(Time(0), NodeId(3));
    let err = engine.run_to_quiescence().unwrap_err();
    assert!(matches!(err, EngineError::Violation(_)), "got {err}");
    assert_eq!(engine.metrics().messages_dropped, 1);
}

#[test]
fn broadcast_redundancy_sometimes_masks_request_loss() {
    // Suzuki-Kasami sends N-1 copies of each request; with mild loss,
    // some runs complete anyway (redundancy), while the failed ones are
    // all *detected*. The DAG algorithm can never mask (previous test),
    // which is the flip side of its minimal message count.
    let mut masked = 0;
    let mut detected = 0;
    for seed in 0..40u64 {
        let mut engine = Engine::new(
            SuzukiKasamiProtocol::cluster(8, NodeId(0)),
            lossy_config(0.05, seed),
        );
        for i in 0..8u32 {
            engine.request_at(Time(i as u64), NodeId(i));
        }
        let result = engine.run_to_quiescence();
        let dropped = engine.metrics().messages_dropped;
        match (dropped, result) {
            (0, r) => r.map(|_| ()).expect("lossless run must pass"),
            (_, Ok(_)) => masked += 1,
            (_, Err(EngineError::Violation(_))) => detected += 1,
            (_, Err(e)) => panic!("unexpected failure mode: {e}"),
        }
    }
    assert!(
        masked > 0,
        "expected some losses to be masked by redundancy"
    );
    assert!(
        detected > 0,
        "expected some losses to be fatal and detected"
    );
}

#[test]
fn dropped_messages_are_visible_in_the_trace() {
    let tree = Tree::line(3);
    let config = EngineConfig {
        drop_rate: 1.0,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(DagProtocol::cluster(&tree, NodeId(0)), config);
    engine.request_at(Time(0), NodeId(2));
    let _ = engine.run_to_quiescence();
    let rendered = engine.trace().to_string();
    assert!(rendered.contains("DROPPED REQUEST"), "trace: {rendered}");
}
