//! End-to-end smoke tests for every experiment driver: each table
//! regenerates with the right shape and reproduces the paper's key cells
//! at reduced sizes (the full-size outputs live in EXPERIMENTS.md).

use dagmutex::harness::experiments;

#[test]
fn tab6_1_reproduces_headline_bounds() {
    let t = experiments::upper_bound::run(13);
    assert_eq!(t.len(), 10);
    assert_eq!(t.find_row("dag (this paper)").unwrap()[3], "3");
    assert_eq!(t.find_row("raymond").unwrap()[3], "4");
    assert_eq!(t.find_row("centralized").unwrap()[3], "3");
    assert_eq!(t.find_row("suzuki-kasami").unwrap()[3], "13");
    assert_eq!(t.find_row("lamport").unwrap()[3], "36");
    assert_eq!(t.find_row("ricart-agrawala").unwrap()[3], "24");
}

#[test]
fn tab6_2_matches_closed_forms() {
    let t = experiments::average_bound::run(&[4, 16]);
    assert_eq!(t.len(), 2);
    for row in 0..2 {
        let paper: f64 = t.cell(row, 1).parse().unwrap();
        let measured: f64 = t.cell(row, 2).parse().unwrap();
        assert!((paper - measured).abs() < 1e-3, "row {row}");
    }
}

#[test]
fn tab6_3_sync_delays() {
    let t = experiments::sync_delay::run(9, 6);
    assert_eq!(t.find_row("dag (this paper)").unwrap()[2], "1");
    assert_eq!(t.find_row("dag (this paper)").unwrap()[3], "1");
    assert_eq!(t.find_row("centralized").unwrap()[2], "2");
    assert_eq!(t.find_row("raymond").unwrap()[3], "5"); // D on line(6)
}

#[test]
fn tab6_4_storage() {
    let t = experiments::storage::run(8);
    assert_eq!(t.find_row("dag (this paper)").unwrap()[2], "3");
    assert_eq!(t.find_row("dag (this paper)").unwrap()[3], "8");
}

#[test]
fn fig8_star_is_first_and_best() {
    let t = experiments::topology_sweep::run();
    assert!(t.cell(0, 0).starts_with("star"));
    let star_worst: u64 = t.cell(0, 2).parse().unwrap();
    assert_eq!(star_worst, 3);
    for row in 1..t.len() {
        let worst: u64 = t.cell(row, 2).parse().unwrap();
        assert!(worst >= star_worst);
    }
}

#[test]
fn figure_walkthroughs_replay() {
    assert_eq!(experiments::traces::fig2().len(), 5);
    assert_eq!(experiments::traces::fig6().len(), 11);
    assert_eq!(
        experiments::traces::fig6_implicit_queue_paper_numbering(),
        vec![2, 1, 5]
    );
}

#[test]
fn extension_sweeps_have_expected_shapes() {
    let load = experiments::load_sweep::run(8, &[200, 2], 6);
    assert_eq!(load.len(), 2);
    // Saturated suzuki-kasami row costs more than dag.
    let dag: f64 = load.cell(1, 1).parse().unwrap();
    let sk: f64 = load.cell(1, 4).parse().unwrap();
    assert!(dag < sk);

    let scale = experiments::scaling::run(&[4, 16], 2);
    assert_eq!(scale.len(), 2);
    // Lamport's cost grows with N; dag's does not (columns: 1 = dag, 7 = lamport).
    let dag_small: f64 = scale.cell(0, 1).parse().unwrap();
    let dag_large: f64 = scale.cell(1, 1).parse().unwrap();
    let lam_small: f64 = scale.cell(0, 7).parse().unwrap();
    let lam_large: f64 = scale.cell(1, 7).parse().unwrap();
    assert!((dag_small - dag_large).abs() < 1.0);
    assert!(lam_large > 2.0 * lam_small);
}
