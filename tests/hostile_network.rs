//! The paper's network model demands reliable links where "messages sent
//! by the same node are not allowed to overtake each other while in
//! transit" (Chapter 2). These tests demonstrate that the assumption is
//! load-bearing: with FIFO enforcement switched off, protocols
//! eventually misbehave — and the engine's checkers (or the state
//! machines' own invariant assertions) catch it rather than silently
//! producing wrong results.

use std::panic::AssertUnwindSafe;

use dagmutex::baselines::lamport::LamportProtocol;
use dagmutex::core::DagProtocol;
use dagmutex::simnet::{Engine, EngineConfig, EngineError, LatencyModel, Protocol, Time};
use dagmutex::topology::{NodeId, Tree};

/// Runs a contended workload; returns `Ok` if the run completed cleanly,
/// `Err(reason)` if a checker fired or a protocol invariant panicked.
fn outcome<P: Protocol>(nodes: Vec<P>, fifo: bool, seed: u64) -> Result<(), String> {
    let config = EngineConfig {
        latency: LatencyModel::Uniform {
            lo: Time(1),
            hi: Time(25),
        },
        cs_duration: LatencyModel::Fixed(Time(2)),
        seed,
        fifo,
        record_trace: false,
        ..EngineConfig::default()
    };
    let n = nodes.len();
    let result: Result<Result<(), EngineError>, _> =
        std::panic::catch_unwind(AssertUnwindSafe(move || {
            let mut engine = Engine::new(nodes, config);
            for round in 0..3u64 {
                for i in 0..n as u32 {
                    engine.request_at(engine.now() + Time((i as u64 * 3 + round) % 7), NodeId(i));
                }
                match engine.run_to_quiescence() {
                    Ok(_) => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        }));
    match result {
        Ok(Ok(())) => Ok(()),
        Ok(Err(e)) => Err(format!("checker: {e}")),
        Err(panic) => {
            let msg = panic
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic".to_string());
            Err(format!("invariant: {msg}"))
        }
    }
}

#[test]
fn fifo_links_keep_every_seed_clean() {
    for seed in 0..20 {
        outcome(DagProtocol::cluster(&Tree::line(5), NodeId(0)), true, seed)
            .unwrap_or_else(|e| panic!("dag with FIFO links failed (seed {seed}): {e}"));
        outcome(LamportProtocol::cluster(5), true, seed)
            .unwrap_or_else(|e| panic!("lamport with FIFO links failed (seed {seed}): {e}"));
    }
}

#[test]
fn reordering_never_corrupts_the_dag_algorithm_silently() {
    // Randomized reordering turns out not to break the DAG algorithm in
    // this search space: a node updates `NEXT` on every receive, so two
    // control messages are almost never in flight on the same ordered
    // pair, and the observed interleavings commute. What this test pins
    // down is the *safety net*: every non-FIFO run either completes with
    // the exact entry count or fails detectably (checker violation or
    // invariant panic) — never a silent wrong answer.
    let mut completed = 0;
    let mut detected = 0;
    for seed in 0..60 {
        for tree in [Tree::line(5), Tree::star(6)] {
            match outcome(DagProtocol::cluster(&tree, NodeId(0)), false, seed) {
                Ok(()) => completed += 1,
                Err(_) => detected += 1,
            }
        }
    }
    assert_eq!(completed + detected, 120);
    assert!(
        completed > 0,
        "reordering made every run fail, which is surprising"
    );
}

#[test]
fn reordering_links_break_lamport_detectably() {
    // A RELEASE overtaking its REQUEST leaves a ghost entry in the
    // replicated queue, blocking everyone: starvation is detected.
    let failures = (0..40)
        .filter(|&seed| outcome(LamportProtocol::cluster(5), false, seed).is_err())
        .count();
    assert!(
        failures > 0,
        "expected at least one detectable failure without FIFO links"
    );
}
