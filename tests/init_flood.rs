//! The paper's Figure 5 `INIT` procedure, end to end: starting from a
//! token holder that floods `INITIALIZE` over the tree, every node's
//! `NEXT` pointer must come to point along its unique path to the
//! holder — the same fixed point `Tree::orient_toward` computes
//! centrally — after exactly `N − 1` messages.

use dagmutex::core::DagProtocol;
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn check_flood(tree: &Tree, holder: NodeId, seed: u64) {
    let config = EngineConfig {
        latency: LatencyModel::Uniform {
            lo: Time(1),
            hi: Time(10),
        },
        seed,
        ..EngineConfig::default()
    };
    let mut engine = Engine::new(DagProtocol::cluster_with_flood(tree, holder), config);
    let report = engine.run_to_quiescence().expect("flood terminates");
    assert_eq!(
        report.metrics.messages_total as usize,
        tree.len() - 1,
        "one INITIALIZE per non-holder"
    );
    assert_eq!(
        report.metrics.kind_count("INITIALIZE") as usize,
        tree.len() - 1
    );
    let orientation = tree.orient_toward(holder);
    for id in tree.nodes() {
        let protocol = engine.node(id);
        assert!(protocol.is_initialized(), "{id} missed the flood");
        assert_eq!(protocol.node().next(), orientation.next_hop(id), "{id}");
        assert_eq!(protocol.node().holding(), id == holder);
    }
}

#[test]
fn flood_orients_canonical_topologies() {
    for tree in [
        Tree::line(9),
        Tree::star(9),
        Tree::kary(9, 2),
        Tree::caterpillar(3, 2),
    ] {
        for holder in [0u32, 3, 8] {
            check_flood(&tree, NodeId(holder), 7);
        }
    }
}

#[test]
fn flood_orients_random_trees_under_random_latency() {
    let mut rng = StdRng::seed_from_u64(55);
    for trial in 0..15 {
        let n = rng.gen_range(2..25);
        let tree = Tree::random(n, &mut rng);
        let holder = tree.random_node(&mut rng);
        check_flood(&tree, holder, trial);
    }
}

#[test]
fn flooded_system_serves_requests_afterwards() {
    let tree = Tree::kary(10, 3);
    let mut engine = Engine::new(
        DagProtocol::cluster_with_flood(&tree, NodeId(4)),
        EngineConfig::default(),
    );
    engine.run_to_quiescence().expect("flood done");
    engine.reset_metrics();
    for i in 0..10u32 {
        engine.request_at(engine.now() + Time(i as u64), NodeId(i));
    }
    let report = engine.run_to_quiescence().expect("requests served");
    assert_eq!(report.metrics.cs_entries, 10);
    assert_eq!(
        report.metrics.kind_count("INITIALIZE"),
        0,
        "metrics were reset"
    );
}
