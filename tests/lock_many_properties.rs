//! Property battery for deadlock-free multi-key acquisition.
//!
//! Random overlapping key sets, acquired concurrently by every node of
//! a threaded `LockSpaceCluster` through `lock_many`, must
//!
//! * never deadlock — acquisition happens in sorted `LockId` order, the
//!   same global order on every client, so waits-for cycles cannot
//!   form (the worker scope joining at all is the proof);
//! * never double-grant — every enter/exit runs through a shared
//!   `KeyedSafetyChecker`, the same per-key oracle the simulator uses;
//! * roll back cleanly on timeout — after quiescence every key must be
//!   acquirable again, i.e. no abandoned privilege is left wedged
//!   ("orphaned") anywhere in the space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use dagmutex::core::LockId;
use dagmutex::lockspace::Placement;
use dagmutex::runtime::{LockError, LockSpaceCluster};
use dagmutex::simnet::checker::KeyedSafetyChecker;
use dagmutex::simnet::Time;
use dagmutex::topology::Tree;
use proptest::prelude::*;

/// A logical clock for the safety oracle: the checker wants
/// monotonically labelled events, not wall time.
fn tick(clock: &AtomicU64) -> Time {
    Time(clock.fetch_add(1, Ordering::Relaxed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn overlapping_lock_many_never_deadlocks_or_double_grants(
        nodes in 2usize..5,
        keys in 2u32..7,
        rounds in 1usize..4,
        set_picks in prop::collection::vec(any::<[prop::sample::Index; 3]>(), 12),
        timeout_picks in prop::collection::vec(any::<bool>(), 12),
    ) {
        let tree = Tree::star(nodes);
        let (cluster, mut clients) =
            LockSpaceCluster::start(&tree, keys, Placement::Modulo);
        let safety = Mutex::new(KeyedSafetyChecker::with_keys(keys as usize));
        let clock = AtomicU64::new(0);
        let granted = AtomicU64::new(0);
        let timed_out = AtomicU64::new(0);

        std::thread::scope(|scope| {
            for (node, client) in clients.iter_mut().enumerate() {
                let (safety, clock) = (&safety, &clock);
                let (granted, timed_out) = (&granted, &timed_out);
                let set_picks = &set_picks;
                let timeout_picks = &timeout_picks;
                scope.spawn(move || {
                    for round in 0..rounds {
                        let slot = node * 3 + round;
                        // 1..=3 keys, overlapping freely across nodes.
                        let picks = &set_picks[slot % set_picks.len()];
                        let width = 1 + slot % 3;
                        let set: Vec<LockId> = picks[..width]
                            .iter()
                            .map(|p| LockId(p.index(keys as usize) as u32))
                            .collect();
                        let bounded = timeout_picks[slot % timeout_picks.len()];
                        let request = client.lock_many(&set);
                        let result = if bounded {
                            // Tight enough to really expire under
                            // contention, long enough to often grant.
                            request.timeout(Duration::from_millis(30))
                        } else {
                            request.wait()
                        };
                        match result {
                            Ok(guard) => {
                                granted.fetch_add(1, Ordering::Relaxed);
                                {
                                    let mut s = safety.lock().unwrap();
                                    for &k in guard.keys() {
                                        s.on_enter(k.index(), guard.node(), tick(clock))
                                            .expect("double grant");
                                    }
                                }
                                // Hold briefly so overlaps really contend.
                                std::thread::sleep(Duration::from_millis(2));
                                {
                                    let mut s = safety.lock().unwrap();
                                    for &k in guard.keys().iter().rev() {
                                        s.on_exit(k.index(), guard.node(), tick(clock))
                                            .expect("exit without entry");
                                    }
                                }
                                drop(guard);
                            }
                            Err(LockError::Timeout) => {
                                timed_out.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => panic!("unexpected lock error: {e}"),
                        }
                    }
                });
            }
        });

        // Every acquisition resolved (the scope joining is the
        // no-deadlock proof); nothing is still marked held.
        prop_assert_eq!(
            safety.lock().unwrap().concurrent(),
            0,
            "keys left held after quiescence"
        );
        prop_assert_eq!(
            granted.load(Ordering::Relaxed) + timed_out.load(Ordering::Relaxed),
            (nodes * rounds) as u64
        );

        // Rollback left no orphaned privileges: the whole key space is
        // still acquirable at once. The generous timeout only guards
        // the test run against wedging — it must in fact grant.
        let all_keys: Vec<LockId> = (0..keys).map(LockId).collect();
        let guard = clients[0]
            .lock_many(&all_keys)
            .timeout(Duration::from_secs(10))
            .expect("some privilege was orphaned by a rollback");
        prop_assert_eq!(guard.keys().len(), keys as usize);
        drop(guard);

        drop(clients);
        let stats = cluster.shutdown();
        // The cluster's ledger is consistent with the oracle's: every
        // granted guard entered at least one key's critical section
        // (timeout rollbacks and the final sweep only add entries).
        prop_assert!(stats.entries >= granted.load(Ordering::Relaxed));
    }
}
