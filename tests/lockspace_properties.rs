//! Property battery for per-key isolation in multiplexed lock-space
//! runs (the `dmx-lockspace` subsystem):
//!
//! (a) no two nodes ever hold the *same* key concurrently — the shared
//!     [`KeyedSafetyChecker`] oracle runs on every grant/release, so a
//!     clean run is the property;
//! (b) *distinct* keys are held concurrently — the concurrency a
//!     single-lock system cannot exhibit, verified via the oracle's
//!     peak-concurrency high-water mark;
//! (c) with batching off, per-key message counts match an equivalent
//!     single-lock run of the same algorithm, key for key.
//!
//! [`KeyedSafetyChecker`]: dagmutex::simnet::checker::KeyedSafetyChecker

use dagmutex::core::{DagProtocol, LockId};
use dagmutex::lockspace::{LockSpace, LockSpaceConfig, Placement};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{KeyDist, KeyedSchedule, KeyedThinkTime};
use proptest::prelude::*;

fn quiet() -> EngineConfig {
    EngineConfig {
        record_trace: false,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Under random key-space sizes, skews, hold times, and seeds,
    /// a multiplexed closed loop completes with the per-key safety and
    /// liveness oracles silent: same-key holds never overlap.
    #[test]
    fn no_two_nodes_hold_the_same_key_concurrently(
        n in 3usize..10,
        keys in 2u32..24,
        rounds in 1u32..5,
        hold in 0u64..4,
        exponent in 0u32..3,
        seed in any::<u64>(),
    ) {
        let tree = Tree::kary(n, 2);
        let dist = if exponent == 0 {
            KeyDist::Uniform
        } else {
            KeyDist::Zipf { exponent: f64::from(exponent) * 0.6 }
        };
        let workload =
            KeyedThinkTime::new(keys, dist, LatencyModel::Fixed(Time(0)), rounds, seed);
        let config = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(hold),
            batching: true,
            ..LockSpaceConfig::default()
        };
        let (nodes, monitor) = LockSpace::cluster(&tree, config, &workload);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().map_err(|e| TestCaseError::fail(e.to_string()))?;
        monitor
            .check_quiescent()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
        prop_assert_eq!(monitor.rollup().grants, rounds as u64 * n as u64);
    }

    /// (b) With one hub key per node all grabbed at t = 0 and held, every
    /// node is inside a *different* key's critical section at once: the
    /// oracle's peak concurrency equals the node count. (Derived from the
    /// same random sizes as (a), so the overlap is exercised across
    /// topologies, not just one example.)
    #[test]
    fn distinct_keys_are_held_concurrently(
        n in 2usize..12,
        hold in 5u64..20,
    ) {
        let tree = Tree::kary(n, 2);
        let mut sched = KeyedSchedule::new(n);
        for i in 0..n {
            sched.push(NodeId::from_index(i), Time(0), LockId(i as u32));
        }
        let config = LockSpaceConfig {
            keys: n as u32,
            placement: Placement::Modulo, // key i's hub is node i: instant grant
            hold: Time(hold),
            batching: true,
            ..LockSpaceConfig::default()
        };
        let (nodes, monitor) = LockSpace::cluster(&tree, config, &sched);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().map_err(|e| TestCaseError::fail(e.to_string()))?;
        monitor
            .check_quiescent()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
        prop_assert_eq!(monitor.peak_concurrent_holders(), n);
    }

    /// (c) Batching off, a globally serialized round-robin schedule: the
    /// multiplexed run's per-key REQUEST and PRIVILEGE counts equal an
    /// equivalent single-lock run of the same key's schedule — the
    /// multiplexing layer adds a key tag, never a message.
    #[test]
    fn per_key_message_counts_match_single_lock_runs_when_batching_is_off(
        n in 3usize..8,
        keys in 1u32..6,
        rounds_per_key in 1usize..4,
    ) {
        let tree = Tree::kary(n, 2);
        // Request j: node j % n, key j % keys, at t = j * 200 — spaced so
        // generously that every request completes before the next starts.
        let spacing = Time(200);
        let requests = keys as usize * rounds_per_key;
        let sched = KeyedSchedule::round_robin(n, keys, requests, spacing);
        let config = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(1),
            batching: false,
            ..LockSpaceConfig::default()
        };
        let (nodes, monitor) = LockSpace::cluster(&tree, config, &sched);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().map_err(|e| TestCaseError::fail(e.to_string()))?;
        monitor
            .check_quiescent()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;

        for k in 0..keys {
            // The same key's schedule, replayed on a plain single-lock
            // engine with the token at the key's hub.
            let hub = NodeId(k % n as u32);
            let schedule: Vec<(Time, NodeId)> = (0..requests)
                .filter(|j| *j as u32 % keys == k)
                .map(|j| (Time(j as u64 * spacing.ticks()), NodeId((j % n) as u32)))
                .collect();
            let mut single = Engine::new(DagProtocol::cluster(&tree, hub), quiet());
            for (at, node) in schedule {
                single.request_at(at, node);
                single.run_to_quiescence()
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
            let stats = monitor.key_stats(LockId(k));
            let metrics = single.metrics();
            prop_assert_eq!(
                stats.request_messages, metrics.kind_count("REQUEST"),
                "key {} REQUEST count diverged", k
            );
            prop_assert_eq!(
                stats.privilege_messages, metrics.kind_count("PRIVILEGE"),
                "key {} PRIVILEGE count diverged", k
            );
        }
    }
}
