//! Property battery for per-key isolation in multiplexed lock-space
//! runs (the `dmx-lockspace` subsystem):
//!
//! (a) no two nodes ever hold the *same* key concurrently — the shared
//!     [`KeyedSafetyChecker`] oracle runs on every grant/release, so a
//!     clean run is the property;
//! (b) *distinct* keys are held concurrently — the concurrency a
//!     single-lock system cannot exhibit, verified via the oracle's
//!     peak-concurrency high-water mark;
//! (c) with batching off, per-key message counts match an equivalent
//!     single-lock run of the same algorithm, key for key;
//! (d) the transport's flush policy is *invisible* to per-key traffic
//!     on serialized demand: `EveryTick`, `Window(k)`, and batching-off
//!     runs produce identical per-key message counts and grants (the
//!     coalescing window moves bytes between envelopes, never between
//!     keys), pinned both property-style and against a golden scenario.
//!
//! [`KeyedSafetyChecker`]: dagmutex::simnet::checker::KeyedSafetyChecker

use dagmutex::core::{DagProtocol, LockId};
use dagmutex::lockspace::{
    FlushPolicy, LeaseConfig, LockSpace, LockSpaceConfig, LockSpaceMonitor, Placement,
};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{KeyDist, KeyedAffinity, KeyedSchedule, KeyedThinkTime, KeyedWorkload};
use proptest::prelude::*;

fn quiet() -> EngineConfig {
    EngineConfig {
        record_trace: false,
        ..EngineConfig::default()
    }
}

/// Runs `workload` to quiescence under `config` and returns the
/// verified engine + monitor.
fn run_space(
    tree: &Tree,
    config: LockSpaceConfig,
    workload: &dyn KeyedWorkload,
) -> Result<(Engine<dagmutex::lockspace::LockSpaceNode>, LockSpaceMonitor), TestCaseError> {
    let (nodes, monitor) = LockSpace::cluster(tree, config, workload);
    let mut engine = Engine::new(nodes, quiet());
    engine
        .run_to_quiescence()
        .map_err(|e| TestCaseError::fail(e.to_string()))?;
    monitor
        .check_quiescent()
        .map_err(|v| TestCaseError::fail(v.to_string()))?;
    Ok((engine, monitor))
}

/// Per-key `(requests, request_messages, privilege_messages, grants)`
/// for every key of a run — the per-key trace the flush-policy
/// equivalence pins.
fn per_key_trace(monitor: &LockSpaceMonitor, keys: u32) -> Vec<(u64, u64, u64, u64)> {
    (0..keys)
        .map(|k| {
            let s = monitor.key_stats(LockId(k));
            (
                s.requests,
                s.request_messages,
                s.privilege_messages,
                s.grants,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (a) Under random key-space sizes, skews, hold times, and seeds,
    /// a multiplexed closed loop completes with the per-key safety and
    /// liveness oracles silent: same-key holds never overlap.
    #[test]
    fn no_two_nodes_hold_the_same_key_concurrently(
        n in 3usize..10,
        keys in 2u32..24,
        rounds in 1u32..5,
        hold in 0u64..4,
        exponent in 0u32..3,
        seed in any::<u64>(),
    ) {
        let tree = Tree::kary(n, 2);
        let dist = if exponent == 0 {
            KeyDist::Uniform
        } else {
            KeyDist::Zipf { exponent: f64::from(exponent) * 0.6 }
        };
        let workload =
            KeyedThinkTime::new(keys, dist, LatencyModel::Fixed(Time(0)), rounds, seed);
        let config = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(hold),
            batching: true,
            ..LockSpaceConfig::default()
        };
        let (nodes, monitor) = LockSpace::cluster(&tree, config, &workload);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().map_err(|e| TestCaseError::fail(e.to_string()))?;
        monitor
            .check_quiescent()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
        prop_assert_eq!(monitor.rollup().grants, rounds as u64 * n as u64);
    }

    /// (b) With one hub key per node all grabbed at t = 0 and held, every
    /// node is inside a *different* key's critical section at once: the
    /// oracle's peak concurrency equals the node count. (Derived from the
    /// same random sizes as (a), so the overlap is exercised across
    /// topologies, not just one example.)
    #[test]
    fn distinct_keys_are_held_concurrently(
        n in 2usize..12,
        hold in 5u64..20,
    ) {
        let tree = Tree::kary(n, 2);
        let mut sched = KeyedSchedule::new(n);
        for i in 0..n {
            sched.push(NodeId::from_index(i), Time(0), LockId(i as u32));
        }
        let config = LockSpaceConfig {
            keys: n as u32,
            placement: Placement::Modulo, // key i's hub is node i: instant grant
            hold: Time(hold),
            batching: true,
            ..LockSpaceConfig::default()
        };
        let (nodes, monitor) = LockSpace::cluster(&tree, config, &sched);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().map_err(|e| TestCaseError::fail(e.to_string()))?;
        monitor
            .check_quiescent()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;
        prop_assert_eq!(monitor.peak_concurrent_holders(), n);
    }

    /// (d) Flush-policy invisibility: on a serialized round-robin
    /// schedule (spacing far wider than any window), `EveryTick`,
    /// `Window(k)`, and batching-off runs produce identical per-key
    /// message counts and grants, and all stay safety-clean. The window
    /// changes *when* envelopes leave and how many there are — never
    /// which keyed messages exist.
    #[test]
    fn per_key_traffic_is_invariant_across_flush_policies(
        n in 3usize..8,
        keys in 1u32..6,
        rounds_per_key in 1usize..4,
        window in 2u64..17,
    ) {
        let tree = Tree::kary(n, 2);
        let spacing = Time(200);
        let requests = keys as usize * rounds_per_key;
        let sched = KeyedSchedule::round_robin(n, keys, requests, spacing);
        let base = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(1),
            ..LockSpaceConfig::default()
        };
        let (_, tick) = run_space(&tree, base.clone(), &sched)?;
        let (engine_win, win) = run_space(
            &tree,
            LockSpaceConfig { flush: FlushPolicy::Window(window), ..base.clone() },
            &sched,
        )?;
        let (engine_off, off) = run_space(
            &tree,
            LockSpaceConfig { batching: false, ..base },
            &sched,
        )?;
        let golden = per_key_trace(&tick, keys);
        prop_assert_eq!(&per_key_trace(&win, keys), &golden, "Window({}) diverged", window);
        prop_assert_eq!(&per_key_trace(&off, keys), &golden, "batching-off diverged");
        // Unbatched, envelopes == keyed messages exactly.
        prop_assert_eq!(engine_off.metrics().messages_total, off.rollup().messages);
        prop_assert!(engine_win.metrics().messages_total <= win.rollup().messages);
    }

    /// (e) Holder leases on, with random windows and fairness budgets:
    /// the same per-key safety oracle runs on every leased re-grant and
    /// must stay silent (per-key mutual exclusion holds under bursty
    /// local demand), the keyed liveness oracle verifies no request —
    /// local or remote — is left ungranted at quiescence, and the closed
    /// loop serves exactly the lease-off grant count: leases move grants
    /// onto the zero-message local path, they never add or drop any.
    #[test]
    fn leases_preserve_per_key_safety_and_serve_everyone(
        n in 3usize..10,
        keys in 2u32..16,
        rounds in 2u32..6,
        hold in 0u64..4,
        window in 1u64..12,
        budget in 0u64..24,
        affinity_pct in 50u32..100,
        seed in any::<u64>(),
    ) {
        let tree = Tree::kary(n, 2);
        // Home-biased zipf demand: the burstiest local re-acquisition
        // shape, which is exactly when leases defer the most releases.
        let workload = KeyedAffinity::new(
            keys,
            n,
            KeyDist::Zipf { exponent: 1.1 },
            f64::from(affinity_pct) / 100.0,
            LatencyModel::Fixed(Time(0)),
            rounds,
            seed,
        );
        let base = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(hold),
            batching: true,
            ..LockSpaceConfig::default()
        };
        let leased = LockSpaceConfig {
            lease: LeaseConfig::new(window, budget),
            ..base.clone()
        };
        let (_, off) = run_space(&tree, base, &workload)?;
        let (_, on) = run_space(&tree, leased, &workload)?;
        prop_assert_eq!(on.rollup().grants, off.rollup().grants);
        prop_assert_eq!(on.rollup().grants, workload.total_requests());
        prop_assert_eq!(off.lease_grants(), 0);
        // Every leased grant rode the zero-message local path, so the
        // message-bearing grant count shrinks by exactly that many.
        // (Total message *counts* may move either way: deferring a
        // remote REQUEST re-times it against a moving token, which can
        // lengthen or shorten its path — the net win is pinned at fixed
        // configurations by the ext_skew experiment tests.)
        prop_assert!(on.lease_grants() <= on.rollup().grants);
    }

    /// (f) `window = 0` is leases-off *exactly*: whatever the fairness
    /// budget says, the per-key trace is byte-identical to the default
    /// configuration — the release path cannot have been touched.
    #[test]
    fn zero_window_lease_is_trace_identical_to_lease_off(
        n in 3usize..8,
        keys in 1u32..6,
        rounds_per_key in 1usize..4,
        budget in 0u64..50,
    ) {
        let tree = Tree::kary(n, 2);
        let requests = keys as usize * rounds_per_key;
        let sched = KeyedSchedule::round_robin(n, keys, requests, Time(200));
        let base = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(1),
            ..LockSpaceConfig::default()
        };
        let zero = LockSpaceConfig {
            lease: LeaseConfig { window: 0, fairness_budget: budget },
            ..base.clone()
        };
        let (_, off) = run_space(&tree, base, &sched)?;
        let (_, zero_window) = run_space(&tree, zero, &sched)?;
        prop_assert_eq!(
            per_key_trace(&zero_window, keys),
            per_key_trace(&off, keys)
        );
        prop_assert_eq!(zero_window.lease_grants(), 0);
    }

    /// (c) Batching off, a globally serialized round-robin schedule: the
    /// multiplexed run's per-key REQUEST and PRIVILEGE counts equal an
    /// equivalent single-lock run of the same key's schedule — the
    /// multiplexing layer adds a key tag, never a message.
    #[test]
    fn per_key_message_counts_match_single_lock_runs_when_batching_is_off(
        n in 3usize..8,
        keys in 1u32..6,
        rounds_per_key in 1usize..4,
    ) {
        let tree = Tree::kary(n, 2);
        // Request j: node j % n, key j % keys, at t = j * 200 — spaced so
        // generously that every request completes before the next starts.
        let spacing = Time(200);
        let requests = keys as usize * rounds_per_key;
        let sched = KeyedSchedule::round_robin(n, keys, requests, spacing);
        let config = LockSpaceConfig {
            keys,
            placement: Placement::Modulo,
            hold: Time(1),
            batching: false,
            ..LockSpaceConfig::default()
        };
        let (nodes, monitor) = LockSpace::cluster(&tree, config, &sched);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().map_err(|e| TestCaseError::fail(e.to_string()))?;
        monitor
            .check_quiescent()
            .map_err(|v| TestCaseError::fail(v.to_string()))?;

        for k in 0..keys {
            // The same key's schedule, replayed on a plain single-lock
            // engine with the token at the key's hub.
            let hub = NodeId(k % n as u32);
            let schedule: Vec<(Time, NodeId)> = (0..requests)
                .filter(|j| *j as u32 % keys == k)
                .map(|j| (Time(j as u64 * spacing.ticks()), NodeId((j % n) as u32)))
                .collect();
            let mut single = Engine::new(DagProtocol::cluster(&tree, hub), quiet());
            for (at, node) in schedule {
                single.request_at(at, node);
                single.run_to_quiescence()
                    .map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
            let stats = monitor.key_stats(LockId(k));
            let metrics = single.metrics();
            prop_assert_eq!(
                stats.request_messages, metrics.kind_count("REQUEST"),
                "key {} REQUEST count diverged", k
            );
            prop_assert_eq!(
                stats.privilege_messages, metrics.kind_count("PRIVILEGE"),
                "key {} PRIVILEGE count diverged", k
            );
        }
    }
}

/// The golden keyed scenario: 9 nodes, 6 keys, 18 serialized
/// round-robin requests. Its per-key trace is pinned (so a transport
/// refactor that silently changes keyed traffic fails loudly) and must
/// be byte-identical under `EveryTick`, `Window(4)`, `Window(16)`,
/// `Adaptive`, and batching-off.
#[test]
fn golden_scenario_per_key_trace_is_flush_policy_invariant() {
    let tree = Tree::kary(9, 2);
    let keys = 6u32;
    let sched = KeyedSchedule::round_robin(9, keys, 18, Time(200));
    let base = LockSpaceConfig {
        keys,
        placement: Placement::Modulo,
        hold: Time(1),
        ..LockSpaceConfig::default()
    };
    let policies = [
        LockSpaceConfig { ..base.clone() },
        LockSpaceConfig {
            flush: FlushPolicy::Window(4),
            ..base.clone()
        },
        LockSpaceConfig {
            flush: FlushPolicy::Window(16),
            ..base.clone()
        },
        LockSpaceConfig {
            flush: FlushPolicy::Adaptive {
                target_per_dst: 2.0,
                max_window: 8,
            },
            ..base.clone()
        },
        LockSpaceConfig {
            batching: false,
            ..base
        },
    ];
    for config in policies {
        let (nodes, monitor) = LockSpace::cluster(&tree, config.clone(), &sched);
        let mut engine = Engine::new(nodes, quiet());
        engine.run_to_quiescence().expect("golden run completes");
        monitor.check_quiescent().expect("golden run is clean");
        let trace = per_key_trace(&monitor, keys);
        assert_eq!(
            trace, GOLDEN_PER_KEY_TRACE,
            "per-key trace drifted under {:?} (batching: {})",
            config.flush, config.batching
        );
    }
}

/// Per-key `(requests, REQUESTs, PRIVILEGEs, grants)` of the golden
/// keyed scenario. These are a function of the DAG algorithm and the
/// schedule alone; no flush policy may move them.
const GOLDEN_PER_KEY_TRACE: [(u64, u64, u64, u64); 6] = [
    (3, 6, 2, 3),
    (3, 5, 2, 3),
    (3, 9, 2, 3),
    (3, 4, 2, 3),
    (3, 3, 2, 3),
    (3, 5, 2, 3),
];
