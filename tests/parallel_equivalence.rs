//! Shard-count invariance of the parallel lock-space runtime.
//!
//! The contract (`dmx_lockspace::parallel` module docs): a
//! [`ParallelEngine`] run over `K` shard engines produces per-key grant
//! sequences, per-key metrics, and global envelope accounting identical
//! for every `K`, threaded or sequential, for any tick-barrier window.
//! This battery hammers that contract with random topologies, demands,
//! holds, and placements; a golden test pins one full configuration —
//! digest, grant log head, envelope totals, the shard→slot map, and
//! raw demand draws — so a determinism break shows up as a concrete
//! diff against numbers recorded at authoring time, not just as two
//! fresh runs agreeing with each other.

use dagmutex::core::LockId;
use dagmutex::lockspace::{LeaseConfig, Placement};
use dagmutex::lockspace::{ParallelConfig, ParallelEngine, ParallelReport, ShardMap, WindowPolicy};
use dagmutex::simnet::Time;
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{KeyLoad, PacedKeyDemand};
use proptest::prelude::*;

/// A random small-but-structured cell: tree shape, key space, demand
/// pacing, hold time, placement.
fn cell() -> impl Strategy<Value = (Tree, PacedKeyDemand, Time, Placement)> {
    (
        (
            2usize..30, // nodes
            0u8..3,     // tree shape
            1u32..40,   // keys
        ),
        (
            2u64..5, // burst
            1u64..5, // rounds
            0u64..u64::MAX / 2,
            1u64..9, // hold
            0u8..2,  // placement
        ),
    )
        .prop_map(|((n, shape, keys), (burst, rounds, seed, hold, pl))| {
            let n = n.max(2);
            let tree = match shape {
                0 => Tree::line(n),
                1 => Tree::star(n),
                _ => Tree::kary(n, 2),
            };
            // Spacing comfortably above burst so rounds never overlap.
            let demand = PacedKeyDemand::new(keys, n, burst + 40, burst, rounds, seed);
            let placement = match pl {
                0 => Placement::Modulo,
                _ => Placement::Hub(NodeId((seed % n as u64) as u32)),
            };
            (tree, demand, Time(hold), placement)
        })
}

fn run(
    tree: &Tree,
    demand: PacedKeyDemand,
    hold: Time,
    placement: &Placement,
    shards: usize,
    window: u64,
    threads: bool,
) -> ParallelReport {
    run_config(
        tree,
        demand,
        ParallelConfig {
            shards,
            window: WindowPolicy::Fixed(window),
            threads,
            hold,
            placement: placement.clone(),
            record_grants: true,
            ..ParallelConfig::default()
        },
    )
}

fn run_config(tree: &Tree, demand: PacedKeyDemand, config: ParallelConfig) -> ParallelReport {
    ParallelEngine::new(tree, demand, config).run()
}

/// The deterministic face of a report: everything that must be
/// invariant across shard counts, windows, and threading.
fn face(r: &ParallelReport) -> impl PartialEq + std::fmt::Debug {
    (
        r.grant_digest,
        r.per_key_grants.clone(),
        r.rollup,
        (r.grants, r.events, r.end, r.starved),
        (r.envelopes, r.envelope_bytes, r.messages),
        r.violation.is_some(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// (a) Shard-count invariance: K = 1, 2, 4, 8 agree on every
    /// deterministic field, and nothing starves or violates safety.
    #[test]
    fn shard_count_never_changes_per_key_outcomes(
        (tree, demand, hold, placement) in cell(),
    ) {
        let base = run(&tree, demand, hold, &placement, 1, 64, false);
        prop_assert!(base.violation.is_none(), "{:?}", base.violation);
        prop_assert_eq!(base.starved, 0);
        prop_assert_eq!(base.grants, demand.total_requests());
        for shards in [2usize, 4, 8] {
            let report = run(&tree, demand, hold, &placement, shards, 64, false);
            prop_assert_eq!(face(&report), face(&base), "K={}", shards);
        }
    }

    /// (b) The tick-barrier window is a performance knob, not a
    /// semantic one: extreme windows agree with the default.
    #[test]
    fn window_width_never_changes_per_key_outcomes(
        (tree, demand, hold, placement) in cell(),
        which in 0usize..3,
    ) {
        let window = [1u64, 7, 1024][which];
        let base = run(&tree, demand, hold, &placement, 4, 64, false);
        let probe = run(&tree, demand, hold, &placement, 4, window, false);
        prop_assert_eq!(face(&probe), face(&base), "window={}", window);
    }

    /// (c) Real OS threads with barrier rendezvous reproduce the
    /// sequential round-robin driver bit for bit.
    #[test]
    fn threaded_runs_match_sequential_runs(
        (tree, demand, hold, placement) in cell(),
        shards in 2usize..5,
    ) {
        let seq = run(&tree, demand, hold, &placement, shards, 32, false);
        let thr = run(&tree, demand, hold, &placement, shards, 32, true);
        prop_assert_eq!(face(&thr), face(&seq));
        prop_assert_eq!(thr.windows, seq.windows);
        prop_assert_eq!(thr.critical_path_events, seq.critical_path_events);
    }

    /// (d) Holder leases stay shard-invariant: lease decisions depend
    /// only on per-key state, so K = 1, 2, 4, 8 agree on every
    /// deterministic field — including how many grants were leased —
    /// for random lease windows and fairness budgets.
    #[test]
    fn leased_runs_stay_shard_invariant(
        (tree, demand, hold, placement) in cell(),
        window in 1u64..16,
        budget in 0u64..32,
    ) {
        let lease = LeaseConfig::new(window, budget);
        let base = run_leased(&tree, demand, hold, &placement, 1, lease);
        prop_assert!(base.violation.is_none(), "{:?}", base.violation);
        prop_assert_eq!(base.starved, 0);
        prop_assert_eq!(base.grants, demand.total_requests());
        for shards in [2usize, 4, 8] {
            let report = run_leased(&tree, demand, hold, &placement, shards, lease);
            prop_assert_eq!(face(&report), face(&base), "K={}", shards);
            prop_assert_eq!(report.lease_grants, base.lease_grants, "K={}", shards);
        }
    }

    /// (e) Shard maps never change results: a demand-balanced LPT map
    /// over the cell's own profile agrees with the modulo map on the
    /// whole deterministic face, at K ∈ {1, 2, 4, 8}, threaded and
    /// sequential — over *skewed* (zipf-1.1) demand, where the two maps
    /// assign keys very differently.
    #[test]
    fn balanced_map_never_changes_per_key_outcomes(
        (tree, demand, hold, placement) in skewed_cell(),
    ) {
        let base = run(&tree, demand, hold, &placement, 1, 64, false);
        prop_assert!(base.violation.is_none(), "{:?}", base.violation);
        prop_assert_eq!(base.starved, 0);
        prop_assert_eq!(base.grants, demand.total_requests());
        let profile = demand.demand_profile();
        for shards in [1usize, 2, 4, 8] {
            for threads in [false, true] {
                let report = run_config(&tree, demand, ParallelConfig {
                    shards,
                    shard_map: ShardMap::balanced(profile.clone()),
                    threads,
                    hold,
                    placement: placement.clone(),
                    record_grants: true,
                    ..ParallelConfig::default()
                });
                prop_assert_eq!(
                    face(&report), face(&base),
                    "K={} threads={}", shards, threads
                );
            }
        }
    }

    /// (f) Adaptive windows are invariant too: the controller changes
    /// the round count, never the results — and the threaded driver
    /// computes the identical width sequence (same `windows`, same
    /// critical path) because widths derive from barrier-merged data.
    #[test]
    fn adaptive_windows_never_change_per_key_outcomes(
        (tree, demand, hold, placement) in cell(),
        min_pow in 0u32..4,
        target in 1u64..64,
    ) {
        let min = 1u64 << min_pow;
        let policy = WindowPolicy::Adaptive { min, max: min * 64, target };
        let fixed = run(&tree, demand, hold, &placement, 4, 64, false);
        let adaptive = |threads| run_config(&tree, demand, ParallelConfig {
            shards: 4,
            window: policy,
            threads,
            hold,
            placement: placement.clone(),
            record_grants: true,
            ..ParallelConfig::default()
        });
        let seq = adaptive(false);
        prop_assert_eq!(face(&seq), face(&fixed), "adaptive vs fixed results");
        let thr = adaptive(true);
        prop_assert_eq!(face(&thr), face(&seq));
        prop_assert_eq!(thr.windows, seq.windows, "width sequences diverged");
        prop_assert_eq!(thr.critical_path_events, seq.critical_path_events);
    }
}

/// Like [`cell`], but with zipf-1.1 per-key volume under the seeded
/// rank permutation. The hottest rank's burst scales by up to ~`keys`,
/// so the spacing floor scales with `burst × keys` to keep every
/// stream strictly increasing.
fn skewed_cell() -> impl Strategy<Value = (Tree, PacedKeyDemand, Time, Placement)> {
    (
        (
            2usize..30, // nodes
            0u8..3,     // tree shape
            2u32..24,   // keys
        ),
        (
            2u64..4, // burst
            1u64..4, // rounds
            0u64..u64::MAX / 2,
            1u64..9, // hold
            0u8..2,  // placement
        ),
    )
        .prop_map(|((n, shape, keys), (burst, rounds, seed, hold, pl))| {
            let n = n.max(2);
            let tree = match shape {
                0 => Tree::line(n),
                1 => Tree::star(n),
                _ => Tree::kary(n, 2),
            };
            let demand =
                PacedKeyDemand::new(keys, n, burst * u64::from(keys) + 41, burst, rounds, seed)
                    .with_load(KeyLoad::Zipf { exponent: 1.1 });
            let placement = match pl {
                0 => Placement::Modulo,
                _ => Placement::Hub(NodeId((seed % n as u64) as u32)),
            };
            (tree, demand, Time(hold), placement)
        })
}

fn run_leased(
    tree: &Tree,
    demand: PacedKeyDemand,
    hold: Time,
    placement: &Placement,
    shards: usize,
    lease: LeaseConfig,
) -> ParallelReport {
    ParallelEngine::new(
        tree,
        demand,
        ParallelConfig {
            shards,
            window: WindowPolicy::Fixed(64),
            threads: false,
            hold,
            placement: placement.clone(),
            lease,
            record_grants: true,
            ..ParallelConfig::default()
        },
    )
    .run()
}

/// The golden pin: one configuration, every load-bearing number
/// recorded. If any constant here changes, the parallel runtime's
/// deterministic contract changed — bump consciously, never casually.
#[test]
fn golden_parallel_trace_is_pinned() {
    let tree = Tree::kary(31, 2);
    let demand = PacedKeyDemand::new(64, 31, 150, 3, 5, 0xD1CE);

    // The shard→slot map is the identity on key % K: pin it directly.
    for (key, expect) in [(0u32, 0usize), (1, 1), (3, 3), (4, 0), (63, 3)] {
        assert_eq!(key as usize % 4, expect, "shard map moved for key {key}");
    }

    // Raw demand draws: the per-shard RNG streams are these pure
    // counter-hash values; any change re-times every run.
    let draws: Vec<(u64, usize)> = [(LockId(0), 0), (LockId(0), 7), (LockId(63), 14)]
        .into_iter()
        .map(|(k, i)| {
            let (t, n) = demand.arrival(k, i);
            (t.ticks(), n.index())
        })
        .collect();
    assert_eq!(draws, GOLDEN_DRAWS, "PacedKeyDemand stream moved");

    let report = run(&tree, demand, Time(3), &Placement::Modulo, 4, 64, false);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert_eq!(report.starved, 0);
    assert_eq!(report.grants, demand.total_requests());
    assert_eq!(report.grant_digest, GOLDEN_DIGEST, "grant digest moved");
    assert_eq!(
        (
            report.events,
            report.envelopes,
            report.envelope_bytes,
            report.messages
        ),
        GOLDEN_TOTALS,
        "event/envelope accounting moved"
    );
    assert_eq!(report.end.ticks(), GOLDEN_END);

    let key0: Vec<(u64, usize)> = report.per_key_grants.as_ref().unwrap()[0]
        .iter()
        .take(4)
        .map(|&(t, n)| (t.ticks(), n.index()))
        .collect();
    assert_eq!(key0, GOLDEN_KEY0_HEAD, "key 0 grant sequence moved");

    // And the pin holds at every other shard count, threaded included.
    for (shards, threads) in [(1, false), (2, false), (8, false), (4, true)] {
        let r = run(
            &tree,
            demand,
            Time(3),
            &Placement::Modulo,
            shards,
            64,
            threads,
        );
        assert_eq!(
            r.grant_digest, GOLDEN_DIGEST,
            "digest moved at K={shards} threads={threads}"
        );
    }
}

const GOLDEN_DRAWS: [(u64, usize); 3] = [(52, 10), (420, 0), (672, 24)];
const GOLDEN_DIGEST: u64 = 9233926495764773015;
const GOLDEN_TOTALS: (u64, u64, u64, u64) = (6710, 4526, 51144, 4790);
const GOLDEN_END: u64 = 760;
const GOLDEN_KEY0_HEAD: [(u64, usize); 4] = [(56, 10), (60, 18), (64, 11), (278, 14)];
