//! Property-based tests of the DAG algorithm's Chapter 5 invariants on
//! arbitrary trees, schedules, and network timings:
//!
//! 1. mutual exclusion (Theorem, 5.1) — checked online by the engine;
//! 2. deadlock/starvation freedom (Theorems 1–2, 5.2) — every request is
//!    granted by quiescence;
//! 3. the undirected `NEXT` structure stays acyclic (assumption 2 of the
//!    proofs, preserved by every step);
//! 4. Lemma 2: every node walks its `NEXT` pointers to a sink in fewer
//!    than `N` hops;
//! 5. the implicit queue read from node states equals the realized grant
//!    order;
//! 6. an isolated request costs at most `D + 1` messages (Chapter 6.1).

use dagmutex::core::{
    implicit_queue, next_edges, sink_nodes, undirected_acyclic, walk_to_sink, DagProtocol,
};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Time};
use dagmutex::topology::{NodeId, Tree};
use proptest::prelude::*;

/// A random tree of 2..=16 nodes via its Prüfer sequence.
fn arb_tree() -> impl Strategy<Value = Tree> {
    (2usize..=16).prop_flat_map(|n| {
        if n == 2 {
            Just(Tree::line(2)).boxed()
        } else {
            proptest::collection::vec(0u32..n as u32, n - 2)
                .prop_map(|prufer| Tree::from_prufer(&prufer))
                .boxed()
        }
    })
}

/// Tree + holder + subset of requesters with request times + seed.
fn arb_scenario() -> impl Strategy<Value = (Tree, NodeId, Vec<(u64, u32)>, u64)> {
    arb_tree().prop_flat_map(|tree| {
        let n = tree.len();
        (
            Just(tree),
            0..n as u32,
            proptest::collection::vec((0u64..40, 0..n as u32), 1..=n),
            any::<u64>(),
        )
            .prop_map(|(tree, holder, mut reqs, seed)| {
                // At most one outstanding request per node (system model):
                // deduplicate requesters.
                reqs.sort_by_key(|&(_, node)| node);
                reqs.dedup_by_key(|&mut (_, node)| node);
                (tree, NodeId(holder), reqs, seed)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Invariants 1–4 hold across random trees, schedules, and latencies;
    /// the engine's checkers enforce 1–2, the post-state asserts 3–4.
    #[test]
    fn safety_liveness_and_structure((tree, holder, reqs, seed) in arb_scenario()) {
        let config = EngineConfig {
            latency: LatencyModel::Exponential { mean: Time(4) },
            cs_duration: LatencyModel::Uniform { lo: Time(1), hi: Time(5) },
            seed,
            record_trace: false,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(DagProtocol::cluster(&tree, holder), config);
        for &(t, node) in &reqs {
            engine.request_at(Time(t), NodeId(node));
        }
        let report = engine.run_to_quiescence().expect("safety or liveness violated");
        prop_assert_eq!(report.metrics.cs_entries as usize, reqs.len());

        let states: Vec<_> = engine.nodes().iter().map(|p| p.node().clone()).collect();
        // (3) undirected acyclicity is preserved.
        prop_assert!(undirected_acyclic(&states));
        // (4) Lemma 2: every node reaches a sink in < N hops.
        for v in tree.nodes() {
            let path = walk_to_sink(&states, v).expect("no directed cycle");
            prop_assert!(path.len() <= tree.len());
        }
        // Quiescent system: exactly one sink, which holds the token.
        let sinks = sink_nodes(&states);
        prop_assert_eq!(sinks.len(), 1);
        prop_assert!(states[sinks[0].index()].holding());
        // The NEXT graph still spans N-1 of the tree's edges.
        let edges = next_edges(&states);
        prop_assert_eq!(edges.len(), tree.len() - 1);
        for (a, b) in edges {
            prop_assert!(tree.has_edge(a, b), "NEXT edge {}-{} left the tree", a, b);
        }
    }

    /// Invariant 5: freeze the system mid-critical-section after all
    /// requests are absorbed; the FOLLOW chain must equal the grant order.
    #[test]
    fn implicit_queue_is_the_grant_order((tree, holder, reqs, _seed) in arb_scenario()) {
        let n = tree.len() as u64;
        let config = EngineConfig {
            // Unit latency; CS long enough that the first entrant is
            // still inside after every request has reached its sink.
            cs_duration: LatencyModel::Fixed(Time(100 * n)),
            record_trace: false,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(DagProtocol::cluster(&tree, holder), config);
        // The holder requests first so it is the one inside the CS while
        // the queue builds up.
        engine.request_at(Time(0), holder);
        for &(t, node) in &reqs {
            if NodeId(node) != holder {
                engine.request_at(Time(1 + t), NodeId(node));
            }
        }
        // Absorb all request traffic (each travels < N hops at 1 tick).
        let absorb_by = Time(50 * n);
        while engine.next_event_time().map(|t| t < absorb_by).unwrap_or(false) {
            engine.step().expect("no violations");
        }
        let states: Vec<_> = engine.nodes().iter().map(|p| p.node().clone()).collect();
        let queue = implicit_queue(&states);
        let report = engine.run_to_quiescence().expect("completes");
        let grants = report.metrics.grant_order();
        prop_assert_eq!(grants[0], holder);
        prop_assert_eq!(queue, grants[1..].to_vec());
    }

    /// Invariant 6: an isolated request never costs more than D + 1
    /// messages, on any tree and any placement.
    #[test]
    fn isolated_request_costs_at_most_diameter_plus_one(
        tree in arb_tree(),
        holder_sel in any::<prop::sample::Index>(),
        requester_sel in any::<prop::sample::Index>(),
    ) {
        let holder = NodeId::from_index(holder_sel.index(tree.len()));
        let requester = NodeId::from_index(requester_sel.index(tree.len()));
        let mut engine =
            Engine::new(DagProtocol::cluster(&tree, holder), EngineConfig::default());
        engine.request_at(Time(0), requester);
        let report = engine.run_to_quiescence().expect("completes");
        let bound = if requester == holder { 0 } else { tree.diameter() as u64 + 1 };
        prop_assert!(
            report.metrics.messages_total <= bound.max(1),
            "cost {} exceeds D+1 = {}",
            report.metrics.messages_total,
            bound
        );
        // And the exact cost is distance + 1 in the quiescent case.
        if requester != holder {
            let exact = tree.distance(requester, holder) as u64 + 1;
            prop_assert_eq!(report.metrics.messages_total, exact);
        }
    }

    /// Re-requesting in waves keeps all invariants: the same node set
    /// requests repeatedly with quiescence in between.
    #[test]
    fn repeated_waves_stay_correct(
        tree in arb_tree(),
        holder_sel in any::<prop::sample::Index>(),
        waves in 1usize..4,
        seed in any::<u64>(),
    ) {
        let holder = NodeId::from_index(holder_sel.index(tree.len()));
        let config = EngineConfig {
            latency: LatencyModel::Uniform { lo: Time(1), hi: Time(7) },
            seed,
            record_trace: false,
            ..EngineConfig::default()
        };
        let mut engine = Engine::new(DagProtocol::cluster(&tree, holder), config);
        for _ in 0..waves {
            for v in tree.nodes() {
                engine.request_at(engine.now(), v);
            }
            engine.run_to_quiescence().expect("wave completes");
        }
        prop_assert_eq!(
            engine.metrics().cs_entries as usize,
            waves * tree.len()
        );
        let states: Vec<_> = engine.nodes().iter().map(|p| p.node().clone()).collect();
        prop_assert!(undirected_acyclic(&states));
        prop_assert_eq!(sink_nodes(&states).len(), 1);
    }
}
