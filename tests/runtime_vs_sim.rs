//! The threaded runtime and the deterministic simulator run the *same*
//! pure state machine; on a serialized schedule they must therefore
//! exchange exactly the same messages.

use dagmutex::core::DagProtocol;
use dagmutex::runtime::Cluster;
use dagmutex::simnet::{Engine, EngineConfig, Time};
use dagmutex::topology::{NodeId, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the same serialized lock sequence on both substrates and
/// compares REQUEST/PRIVILEGE counts.
fn compare_on(tree: &Tree, holder: NodeId, sequence: &[NodeId]) {
    // Simulator: requests spaced far apart => fully serialized.
    let mut engine = Engine::new(DagProtocol::cluster(tree, holder), EngineConfig::default());
    for (i, &node) in sequence.iter().enumerate() {
        engine.request_at(Time(i as u64 * 1_000), node);
    }
    let report = engine.run_to_quiescence().expect("simulated run completes");

    // Threaded runtime: lock/unlock strictly in order from this thread.
    let (cluster, mut handles) = Cluster::start(tree, holder);
    for &node in sequence {
        let guard = handles[node.index()].lock().expect("cluster running");
        drop(guard);
    }
    let stats = cluster.shutdown();

    assert_eq!(stats.entries as usize, sequence.len());
    assert_eq!(
        stats.messages_total, report.metrics.messages_total,
        "message counts diverged on {tree:?} sequence {sequence:?}"
    );
    let requests: u64 = stats.per_node.iter().map(|s| s.requests_sent).sum();
    let privileges: u64 = stats.per_node.iter().map(|s| s.privileges_sent).sum();
    assert_eq!(requests, report.metrics.kind_count("REQUEST"));
    assert_eq!(privileges, report.metrics.kind_count("PRIVILEGE"));
}

#[test]
fn identical_counts_on_fixed_scenarios() {
    compare_on(
        &Tree::star(6),
        NodeId(2),
        &[NodeId(4), NodeId(0), NodeId(4), NodeId(5)],
    );
    compare_on(
        &Tree::line(5),
        NodeId(0),
        &[NodeId(4), NodeId(2), NodeId(0)],
    );
    compare_on(
        &Tree::kary(7, 2),
        NodeId(3),
        &[NodeId(6), NodeId(6), NodeId(1), NodeId(0), NodeId(5)],
    );
}

#[test]
fn identical_counts_on_random_scenarios() {
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..10 {
        let n = rng.gen_range(2..10);
        let tree = Tree::random(n, &mut rng);
        let holder = tree.random_node(&mut rng);
        let sequence: Vec<NodeId> = (0..rng.gen_range(1..12))
            .map(|_| tree.random_node(&mut rng))
            .collect();
        compare_on(&tree, holder, &sequence);
    }
}

#[test]
fn concurrent_runtime_matches_simulator_entry_count() {
    // Under true concurrency exact message counts depend on scheduling,
    // but the entry count and the ≤ (D+1) per-entry average must hold.
    let tree = Tree::star(8);
    let (cluster, handles) = Cluster::start(&tree, NodeId(0));
    let per_node = 25u64;
    let workers: Vec<_> = handles
        .into_iter()
        .map(|mut h| {
            std::thread::spawn(move || {
                for _ in 0..per_node {
                    h.lock().expect("running");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.entries, per_node * 8);
    let bound = (tree.diameter() + 1) as f64;
    assert!(
        stats.messages_per_entry() <= bound,
        "average {} exceeds D+1 = {bound}",
        stats.messages_per_entry()
    );
}
