//! The threaded runtimes and the deterministic simulator run the *same*
//! pure state machine; on a serialized schedule they must therefore
//! exchange exactly the same messages — and a scripted client session
//! (lock / try / timeout / deadline / multi-key steps) must produce the
//! same per-step outcomes on every substrate.

use std::time::Duration;

use dagmutex::core::{DagProtocol, LockId};
use dagmutex::lockspace::{Placement, ScriptedClient, SessionConfig};
use dagmutex::runtime::{run_script, Cluster, LockService, LockSpaceCluster};
use dagmutex::simnet::{Engine, EngineConfig, Time};
use dagmutex::topology::{NodeId, Tree};
use dagmutex::workload::{Outcome, Script};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the same serialized lock sequence on both substrates and
/// compares REQUEST/PRIVILEGE counts.
fn compare_on(tree: &Tree, holder: NodeId, sequence: &[NodeId]) {
    // Simulator: requests spaced far apart => fully serialized.
    let mut engine = Engine::new(DagProtocol::cluster(tree, holder), EngineConfig::default());
    for (i, &node) in sequence.iter().enumerate() {
        engine.request_at(Time(i as u64 * 1_000), node);
    }
    let report = engine.run_to_quiescence().expect("simulated run completes");

    // Threaded runtime: lock/unlock strictly in order from this thread.
    let (cluster, mut clients) = Cluster::start(tree, holder);
    for &node in sequence {
        let guard = clients[node.index()]
            .lock(LockId(0))
            .wait()
            .expect("cluster running");
        drop(guard);
    }
    let stats = cluster.shutdown();

    assert_eq!(stats.entries as usize, sequence.len());
    assert_eq!(
        stats.messages_total, report.metrics.messages_total,
        "message counts diverged on {tree:?} sequence {sequence:?}"
    );
    let requests: u64 = stats.per_node.iter().map(|s| s.requests_sent).sum();
    let privileges: u64 = stats.per_node.iter().map(|s| s.privileges_sent).sum();
    assert_eq!(requests, report.metrics.kind_count("REQUEST"));
    assert_eq!(privileges, report.metrics.kind_count("PRIVILEGE"));
}

#[test]
fn identical_counts_on_fixed_scenarios() {
    compare_on(
        &Tree::star(6),
        NodeId(2),
        &[NodeId(4), NodeId(0), NodeId(4), NodeId(5)],
    );
    compare_on(
        &Tree::line(5),
        NodeId(0),
        &[NodeId(4), NodeId(2), NodeId(0)],
    );
    compare_on(
        &Tree::kary(7, 2),
        NodeId(3),
        &[NodeId(6), NodeId(6), NodeId(1), NodeId(0), NodeId(5)],
    );
}

#[test]
fn identical_counts_on_random_scenarios() {
    let mut rng = StdRng::seed_from_u64(2024);
    for _ in 0..10 {
        let n = rng.gen_range(2..10);
        let tree = Tree::random(n, &mut rng);
        let holder = tree.random_node(&mut rng);
        let sequence: Vec<NodeId> = (0..rng.gen_range(1..12))
            .map(|_| tree.random_node(&mut rng))
            .collect();
        compare_on(&tree, holder, &sequence);
    }
}

#[test]
fn concurrent_runtime_matches_simulator_entry_count() {
    // Under true concurrency exact message counts depend on scheduling,
    // but the entry count and the ≤ (D+1) per-entry average must hold.
    let tree = Tree::star(8);
    let (cluster, clients) = Cluster::start(&tree, NodeId(0));
    let per_node = 25u64;
    let workers: Vec<_> = clients
        .into_iter()
        .map(|mut c| {
            std::thread::spawn(move || {
                for _ in 0..per_node {
                    drop(c.lock(LockId(0)).wait().expect("running"));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = cluster.shutdown();
    assert_eq!(stats.entries, per_node * 8);
    let bound = (tree.diameter() + 1) as f64;
    assert!(
        stats.messages_per_entry() <= bound,
        "average {} exceeds D+1 = {bound}",
        stats.messages_per_entry()
    );
}

// ---------------------------------------------------------------------
// Scripted sessions: identical client programs, identical outcomes.
// ---------------------------------------------------------------------

/// One wall-clock script tick in the threaded executor. Generous enough
/// that an uncontended grant always lands inside a timeout window, tiny
/// enough that timing out on a blocked key stays fast.
const TICK: Duration = Duration::from_millis(2);

/// Runs `script` under the simulator and against the threaded
/// `LockSpaceCluster`, asserting outcome equality; returns the vector
/// for scenario-specific assertions.
fn parity_on(
    tree: &Tree,
    keys: u32,
    placement: Placement,
    script: &Script,
) -> Vec<Option<Outcome>> {
    let config = SessionConfig {
        keys,
        placement: placement.clone(),
        ..SessionConfig::default()
    };
    let (nodes, monitor) = ScriptedClient::cluster(tree, config, script);
    let mut engine = Engine::new(nodes, EngineConfig::default());
    engine
        .run_to_quiescence()
        .expect("simulated session completes");
    let simulated = monitor.finish().expect("per-key safety holds");

    let (cluster, mut clients) = LockSpaceCluster::start(tree, keys, placement);
    let threaded = run_script(&mut clients, script, TICK);
    drop(clients);
    cluster.shutdown();

    assert_eq!(
        simulated, threaded,
        "sim and threaded outcomes diverged on {tree:?}"
    );
    simulated
}

#[test]
fn scripted_session_parity_on_basic_lock_try_release() {
    let tree = Tree::star(4);
    let script = Script::new()
        .lock(NodeId(2), LockId(3))
        .try_lock(NodeId(1), LockId(3)) // node 2 holds: refused
        .release(NodeId(1))
        .release(NodeId(2))
        .try_lock(NodeId(2), LockId(3)) // token parked at 2: granted
        .release(NodeId(2))
        .lock(NodeId(1), LockId(3)) // free now: granted
        .release(NodeId(1));
    let outcomes = parity_on(&tree, 8, Placement::Hub(NodeId(0)), &script);
    assert_eq!(
        outcomes,
        vec![
            Some(Outcome::Granted),
            Some(Outcome::WouldBlock),
            None,
            None,
            Some(Outcome::Granted),
            None,
            Some(Outcome::Granted),
            None,
        ]
    );
}

#[test]
fn scripted_session_parity_on_timeouts_and_deadlines() {
    let tree = Tree::kary(5, 2);
    let script = Script::new()
        .lock(NodeId(1), LockId(2))
        // Held by node 1 through this whole step: deterministic timeout.
        .lock_timeout(NodeId(3), LockId(2), Time(60))
        .release(NodeId(3))
        // A different key is granted well inside the window.
        .lock_timeout(NodeId(3), LockId(5), Time(600))
        .release(NodeId(3))
        .release(NodeId(1))
        // Elapsed deadline: fails on the spot, acquiring nothing.
        .lock_deadline(NodeId(2), LockId(2), Time(0))
        .release(NodeId(2))
        // Generous deadline: effectively a wait.
        .lock_deadline(NodeId(2), LockId(2), Time(1_000_000))
        .release(NodeId(2))
        // The abandoned privilege from step 1 bounced; key 2 is clean.
        .lock(NodeId(3), LockId(2))
        .release(NodeId(3))
        // Mid-range deadline in the *logical* past (step 12 issues at
        // logical tick 12 000, far beyond tick 500): must fail on every
        // substrate, even though 500 wall-clock ticks from the session
        // epoch would still be comfortably in the future on threads.
        .lock_deadline(NodeId(2), LockId(2), Time(500))
        .release(NodeId(2))
        // Mid-range deadline shortly *after* this step's logical tick:
        // the uncontended grant lands inside the remaining window.
        .lock_deadline(NodeId(2), LockId(2), Time(14_600))
        .release(NodeId(2));
    let outcomes = parity_on(&tree, 8, Placement::Modulo, &script);
    assert_eq!(
        outcomes,
        vec![
            Some(Outcome::Granted),
            Some(Outcome::TimedOut),
            None,
            Some(Outcome::Granted),
            None,
            None,
            Some(Outcome::DeadlineExceeded),
            None,
            Some(Outcome::Granted),
            None,
            Some(Outcome::Granted),
            None,
            Some(Outcome::DeadlineExceeded),
            None,
            Some(Outcome::Granted),
            None,
        ]
    );
}

#[test]
fn scripted_session_parity_on_multi_key_acquisition() {
    let tree = Tree::star(4);
    let script = Script::new()
        .lock(NodeId(1), LockId(6))
        // {2, 6}: takes 2, stalls on held 6, rolls 2 back on expiry.
        .lock_many_timeout(NodeId(2), &[LockId(6), LockId(2)], Time(80))
        .release(NodeId(2))
        // Key 2 must be free again after the rollback.
        .lock(NodeId(3), LockId(2))
        .release(NodeId(3))
        .release(NodeId(1))
        // All free: the whole (unsorted, duplicated) set is acquirable.
        .lock_many(NodeId(2), &[LockId(6), LockId(1), LockId(6), LockId(2)])
        .release(NodeId(2))
        // And a multi-key try right where the tokens parked.
        .lock_many(NodeId(2), &[LockId(1), LockId(2)])
        .release(NodeId(2));
    let outcomes = parity_on(&tree, 8, Placement::Hub(NodeId(0)), &script);
    assert_eq!(
        outcomes,
        vec![
            Some(Outcome::Granted),
            Some(Outcome::TimedOut),
            None,
            Some(Outcome::Granted),
            None,
            None,
            Some(Outcome::Granted),
            None,
            Some(Outcome::Granted),
            None,
        ]
    );
}

#[test]
fn scripted_session_parity_on_single_lock_backends() {
    // The same script on the single-lock substrates: simulated session
    // with one key vs the channel cluster vs TCP. (The lock-space
    // backend is covered by every other parity test.)
    let tree = Tree::line(3);
    let script = Script::new()
        .lock(NodeId(2), LockId(0))
        .try_lock(NodeId(0), LockId(0)) // held at node 2: refused
        .release(NodeId(0))
        .release(NodeId(2))
        .try_lock(NodeId(2), LockId(0)) // parked at node 2: granted
        .release(NodeId(2))
        .lock_timeout(NodeId(0), LockId(0), Time(600))
        .release(NodeId(0));
    let config = SessionConfig {
        keys: 1,
        placement: Placement::Hub(NodeId(0)),
        ..SessionConfig::default()
    };
    let (nodes, monitor) = ScriptedClient::cluster(&tree, config, &script);
    let mut engine = Engine::new(nodes, EngineConfig::default());
    engine
        .run_to_quiescence()
        .expect("simulated session completes");
    let simulated = monitor.finish().expect("per-key safety holds");

    let (cluster, mut clients) = Cluster::start(&tree, NodeId(0));
    assert_eq!(cluster.keys(), 1);
    let channel = run_script(&mut clients, &script, TICK);
    drop(clients);
    cluster.shutdown();

    let (tcp, mut clients) = dagmutex::runtime::tcp::TcpCluster::start(&tree, NodeId(0))
        .expect("loopback listeners bind");
    let over_tcp = run_script(&mut clients, &script, TICK);
    drop(clients);
    tcp.shutdown();

    assert_eq!(simulated, channel, "sim vs channel cluster diverged");
    assert_eq!(simulated, over_tcp, "sim vs TCP cluster diverged");
    assert_eq!(
        simulated[4],
        Some(Outcome::Granted),
        "token parking visible"
    );
}

#[test]
fn scripted_session_parity_on_random_well_formed_scripts() {
    // Random scripts built so every outcome is deterministic: a step
    // either targets keys that are provably free (hence Granted /
    // tries where the token provably parked), or provably held through
    // the step (hence TimedOut / WouldBlock).
    let mut rng = StdRng::seed_from_u64(7_2026);
    for round in 0..5 {
        let n = rng.gen_range(2..6);
        let tree = Tree::random(n, &mut rng);
        let keys = rng.gen_range(2..6) as u32;

        let mut script = Script::new();
        // One deliberately-held key; its holder sits out the middle
        // steps (it already has an open acquire).
        let blocker = LockId(0);
        let holder = NodeId(rng.gen_range(0..n) as u32);
        script = script.lock(holder, blocker);
        for _ in 0..rng.gen_range(3..8) {
            let node = loop {
                let candidate = NodeId(rng.gen_range(0..n) as u32);
                if candidate != holder {
                    break candidate;
                }
            };
            let free_key = LockId(rng.gen_range(1..keys));
            match rng.gen_range(0..4) {
                // A free key is always granted inside a fat window.
                0 => script = script.lock_timeout(node, free_key, Time(600)),
                // Waiting on a free key always succeeds.
                1 => script = script.lock(node, free_key),
                // The blocker is held through the whole step:
                // deterministic timeout (and re-timeouts exercise
                // request adoption on both substrates).
                2 => script = script.lock_timeout(node, blocker, Time(40)),
                // Multi-key over free keys only.
                _ => {
                    let k2 = LockId(rng.gen_range(1..keys));
                    script = script.lock_many(node, &[free_key, k2]);
                }
            }
            script = script.release(node);
        }
        script = script.release(holder);
        let _ = parity_on(&tree, keys, Placement::Modulo, &script);
        let _ = round;
    }
}
