//! Property-level equivalence of the two scheduler backends.
//!
//! `dmx_simnet::sched`'s determinism contract says [`HeapQueue`] and
//! [`WheelQueue`] pop identical `(time, seq)` sequences for any legal
//! schedule — pushes never behind the last popped time, `seq` strictly
//! increasing. The golden test pins one engine-level scenario; this
//! battery hammers the queues *directly* with random interleavings of
//! pushes and pops covering every structural path of the wheel:
//! same-tick ties (the lock space's flush wakes), block crossings
//! (level-1 bucket rotations), super-block crossings, and far-future
//! wakes beyond the wheel's span (overflow heap promotions, the
//! `Ctx::wake_at` regime).
//!
//! A second property drives two whole engines — one per backend — over
//! random request schedules with `Uniform` latencies and asserts the
//! recorded traces match event for event.

use dagmutex::core::DagProtocol;
use dagmutex::simnet::sched::{EventQueue, HeapQueue, Wheel256Queue, WheelQueue, WHEEL_SPAN};
use dagmutex::simnet::{Engine, EngineConfig, LatencyModel, Scheduler, Time};
use dagmutex::topology::{NodeId, Tree};
use proptest::prelude::*;

/// One step of a random queue workout: push some events at offsets from
/// the current virtual now, or pop one.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push an event `offset` ticks after the last popped time.
    Push { offset: u64 },
    /// Pop the earliest event (no-op on empty queues).
    Pop,
}

/// Offsets are biased hard toward the engine's real distribution
/// (`now + 0/1` dominates under one-tick-per-hop), with a tail of
/// block-, super-block-, and span-crossing jumps.
fn arb_op() -> impl Strategy<Value = Op> {
    prop::sample::select(vec![
        Op::Push { offset: 0 },
        Op::Push { offset: 0 },
        Op::Push { offset: 1 },
        Op::Push { offset: 1 },
        Op::Push { offset: 1 },
        Op::Push { offset: 2 },
        Op::Push { offset: 7 },
        Op::Push { offset: 63 },
        Op::Push { offset: 64 },
        Op::Push { offset: 65 },
        Op::Push { offset: 500 },
        Op::Push { offset: 4095 },
        Op::Push { offset: 4096 },
        Op::Push {
            offset: WHEEL_SPAN + 17,
        },
        Op::Push {
            offset: 3 * WHEEL_SPAN,
        },
        Op::Push { offset: 1_000_000 },
        Op::Pop,
        Op::Pop,
        Op::Pop,
        Op::Pop,
        Op::Pop,
        Op::Pop,
        Op::Pop,
        Op::Pop,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backends_pop_random_schedules_in_the_same_order(
        ops in prop::collection::vec(arb_op(), 1..200),
    ) {
        // The heap is the reference; both wheel widths — the 64-slot
        // default and the 256-slot probe — must reproduce it exactly.
        let mut heap: HeapQueue<u64> = HeapQueue::new();
        let mut wheel: WheelQueue<u64> = WheelQueue::new();
        let mut wheel256: Wheel256Queue<u64> = Wheel256Queue::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for op in ops {
            match op {
                Op::Push { offset } => {
                    let at = Time(now + offset);
                    heap.push(at, seq, seq);
                    wheel.push(at, seq, seq);
                    wheel256.push(at, seq, seq);
                    seq += 1;
                }
                Op::Pop => {
                    let h = heap.pop_earliest();
                    let w = wheel.pop_earliest();
                    let w256 = wheel256.pop_earliest();
                    prop_assert_eq!(h, w);
                    prop_assert_eq!(h, w256);
                    if let Some((t, _)) = h {
                        // Subsequent pushes respect the engine invariant
                        // of never scheduling into the past.
                        now = t.0;
                    }
                }
            }
            prop_assert_eq!(heap.len(), wheel.len());
            prop_assert_eq!(heap.len(), wheel256.len());
        }
        // Drain whatever remains; order must agree to the last event.
        loop {
            let h = heap.pop_earliest();
            let w = wheel.pop_earliest();
            let w256 = wheel256.pop_earliest();
            prop_assert_eq!(h, w);
            prop_assert_eq!(h, w256);
            if h.is_none() {
                break;
            }
        }
        prop_assert!(heap.is_empty() && wheel.is_empty() && wheel256.is_empty());
    }

    #[test]
    fn whole_engine_traces_match_across_backends(
        seed in 0u64..1_000_000,
        n in 4usize..20,
        hi in 1u64..120,
        holder in any::<prop::sample::Index>(),
    ) {
        let run = |scheduler: Scheduler| {
            let tree = Tree::kary(n, 2);
            let config = EngineConfig {
                // Spans the Auto boundary: hi <= 64 would pick the wheel,
                // above it the heap — but here each backend is forced,
                // so the latency width only varies the event horizon.
                latency: LatencyModel::Uniform { lo: Time(1), hi: Time(hi) },
                cs_duration: LatencyModel::Fixed(Time(2)),
                seed,
                scheduler,
                ..EngineConfig::default()
            };
            let nodes = DagProtocol::cluster(&tree, NodeId::from_index(holder.index(n)));
            let mut engine = Engine::new(nodes, config);
            for i in 0..n {
                engine.request_at(Time((i % 3) as u64), NodeId::from_index(i));
            }
            engine.run_to_quiescence().expect("violation-free");
            (engine.trace().clone(), engine.now())
        };
        let (trace_heap, end_heap) = run(Scheduler::Heap);
        let (trace_wheel, end_wheel) = run(Scheduler::Wheel);
        let (trace_wheel256, end_wheel256) = run(Scheduler::Wheel256);
        prop_assert_eq!(end_heap, end_wheel);
        prop_assert_eq!(trace_heap.clone(), trace_wheel);
        prop_assert_eq!(end_heap, end_wheel256);
        prop_assert_eq!(trace_heap, trace_wheel256);
    }
}
