//! Storm-time consistency of Chandy–Lamport cuts.
//!
//! Property: a [`LockSpaceCluster::snapshot`] taken while client
//! threads hammer the space is a *consistent* global state — every key
//! shows exactly one privilege across node tables, staged transports,
//! and per-channel recordings (plus the implicit token of an untouched
//! hub), and the recordings themselves respect the marker protocol (a
//! node never records its own channel, and every channel's recording is
//! closed by the time the cut is returned).
//!
//! The ledger is recomputed here from the raw slices, independently of
//! [`LockSpaceSnapshot::verify`], so the oracle and the protocol cannot
//! share a blind spot.
//!
//! [`LockSpaceCluster::snapshot`]: dmx_runtime::LockSpaceCluster::snapshot
//! [`LockSpaceSnapshot::verify`]: dmx_runtime::LockSpaceSnapshot::verify

use dmx_core::{DagMessage, LockId};
use dmx_lockspace::{FlushPolicy, Placement};
use dmx_runtime::{LockSpaceCluster, LockSpaceClusterConfig};
use dmx_topology::Tree;
use proptest::prelude::*;

/// Runs `rounds` lock/unlock cycles per node while the main thread
/// captures `snapshots` cuts, checking each one.
fn storm_with_snapshots(
    tree: &Tree,
    keys: u32,
    workers: usize,
    flush: FlushPolicy,
    rounds: u32,
    snapshots: usize,
) -> Result<(), TestCaseError> {
    let placement = Placement::Modulo;
    let config = LockSpaceClusterConfig {
        keys,
        placement: placement.clone(),
        workers,
        flush,
    };
    let (cluster, clients) = LockSpaceCluster::start_with(tree, config);
    let n = cluster.len();
    let mut threads = Vec::new();
    for (i, mut client) in clients.into_iter().enumerate() {
        threads.push(std::thread::spawn(move || {
            for round in 0..rounds {
                let key = LockId(round.wrapping_mul(13).wrapping_add(i as u32 * 5) % keys);
                drop(client.lock(key).wait().unwrap());
            }
        }));
    }

    for _ in 0..snapshots {
        let snapshot = cluster.snapshot();
        let summary = snapshot
            .verify()
            .map_err(|v| TestCaseError::fail(format!("inconsistent cut: {v:?}")))?;
        prop_assert_eq!(
            summary.staged_messages + summary.recorded_messages,
            snapshot.in_flight_messages()
        );

        // Recount the privilege ledger from the raw slices.
        let mut privileges = vec![0usize; keys as usize];
        let mut hub_touched = vec![false; keys as usize];
        for cut in snapshot.cuts() {
            prop_assert_eq!(cut.in_flight.len(), n);
            prop_assert!(
                cut.in_flight[cut.node.index()].is_empty(),
                "node {} recorded its own (nonexistent) channel",
                cut.node
            );
            for kc in &cut.keys {
                if kc.has_token {
                    privileges[kc.key.index()] += 1;
                }
                if cut.node == placement.hub(kc.key, n) {
                    hub_touched[kc.key.index()] = true;
                }
            }
            let in_flight = cut
                .staged
                .iter()
                .map(|(_, msg)| msg)
                .chain(cut.in_flight.iter().flatten());
            for msg in in_flight {
                if matches!(msg.msg, DagMessage::Privilege) {
                    privileges[msg.lock.index()] += 1;
                }
            }
        }
        for (key, &found) in privileges.iter().enumerate() {
            let total = found + usize::from(!hub_touched[key]);
            prop_assert_eq!(total, 1, "key {} carries {} privileges", key, total);
        }
    }

    for t in threads {
        t.join().unwrap();
    }
    let stats = cluster.shutdown();
    prop_assert_eq!(stats.entries, u64::from(rounds) * n as u64);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn storm_time_cuts_have_exactly_one_privilege_per_key(
        shape in 0usize..3,
        n in 3usize..7,
        keys in 1u32..10,
        workers in 1usize..3,
        window in 1u64..5,
        rounds in 4u32..24,
        snapshots in 1usize..4,
    ) {
        let tree = match shape {
            0 => Tree::star(n),
            1 => Tree::line(n),
            _ => Tree::kary(n, 2),
        };
        storm_with_snapshots(
            &tree,
            keys,
            workers,
            FlushPolicy::Window(window),
            rounds,
            snapshots,
        )?;
    }
}
