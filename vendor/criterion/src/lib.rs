//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the criterion API the workspace's `benches/` targets use:
//! [`Criterion`] with `bench_function` / `benchmark_group` /
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark body is warmed up once, then timed
//! over `sample_size` batches whose per-iteration mean is reported (best
//! batch wins, which is robust to scheduler noise). There is no
//! statistical analysis, plotting, or baseline storage. Set `BENCH_SMOKE=1`
//! to run every benchmark exactly once — CI uses this to keep bench
//! targets compiling and running without paying for real measurements.

use std::time::{Duration, Instant};

/// Formats a per-iteration duration like `12.34 µs`.
fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v != "0")
        .unwrap_or(false)
}

/// Times one benchmark body.
pub struct Bencher {
    samples: usize,
    measurement: Duration,
    /// Best observed mean nanoseconds per iteration.
    best_ns: f64,
}

impl Bencher {
    /// Calls `body` repeatedly and records the fastest mean iteration
    /// time over the configured samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        if smoke_mode() {
            let start = Instant::now();
            std::hint::black_box(body());
            self.best_ns = start.elapsed().as_nanos() as f64;
            return;
        }
        // Warm-up + calibration: size batches so one batch is ~1/sample
        // of the measurement budget.
        let start = Instant::now();
        std::hint::black_box(body());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let budget = self.measurement.as_nanos() as f64 / self.samples as f64;
        let per_batch = ((budget / once.as_nanos() as f64).ceil() as u64).clamp(1, 1_000_000);

        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(body());
            }
            let mean = start.elapsed().as_nanos() as f64 / per_batch as f64;
            if mean < best {
                best = mean;
            }
        }
        self.best_ns = best;
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// The benchmark driver handed to every target function.
pub struct Criterion {
    sample_size: usize,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is a single call here.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            measurement: self.measurement,
            best_ns: 0.0,
        };
        f(&mut b);
        println!("bench: {:<50} {:>12}/iter", name, fmt_ns(b.best_ns));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A set of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.criterion.sample_size),
            measurement: self.criterion.measurement,
            best_ns: 0.0,
        };
        f(&mut b, input);
        println!(
            "bench: {:<50} {:>12}/iter",
            format!("{}/{}", self.name, id.id),
            fmt_ns(b.best_ns)
        );
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(&mut self) {}
}

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `fn main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut calls = 0u64;
        std::env::set_var("BENCH_SMOKE", "1");
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        std::env::remove_var("BENCH_SMOKE");
        assert!(calls >= 1);
    }

    #[test]
    fn group_runs_with_input() {
        std::env::set_var("BENCH_SMOKE", "1");
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        let mut seen = 0;
        group.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &x| {
            b.iter(|| {
                seen = x;
            })
        });
        group.finish();
        std::env::remove_var("BENCH_SMOKE");
        assert_eq!(seen, 7);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_ns(12.0), "12.00 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
    }
}
