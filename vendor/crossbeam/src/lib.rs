//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the one API surface the workspace uses: [`channel`], a multi-producer
//! multi-consumer channel with disconnect detection and timed receives,
//! implemented over `Mutex` + `Condvar`. Semantics match crossbeam for
//! this workspace's usage; `bounded` channels do not exert backpressure
//! (they are used here only as one-shot acknowledgement slots).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; clonable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (any receiver may take a message).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The message could not be delivered: every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// The channel is empty and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of a non-blocking receive that produced no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but still connected.
        Empty,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    /// Outcome of a timed receive that produced no message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still connected.
        Timeout,
        /// Every sender is gone and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty, disconnected channel")
                }
            }
        }
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A "bounded" channel. This stand-in never blocks senders; the
    /// workspace only uses bounded channels as one-shot acknowledgement
    /// slots, where capacity is irrelevant.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`.
        ///
        /// # Errors
        ///
        /// [`SendError`] returning the message if every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(msg));
            }
            state.queue.push_back(msg);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// [`RecvError`] when the queue is empty and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Takes a message if one is immediately available, without
        /// blocking.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when the queue is empty but senders
        /// remain, [`TryRecvError::Disconnected`] when it is empty and
        /// every sender is gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(msg) = state.queue.pop_front() {
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] or
        /// [`RecvTimeoutError::Disconnected`].
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(state, deadline - now)
                    .expect("channel poisoned");
                state = next;
                if timed_out.timed_out() && state.queue.is_empty() {
                    if state.senders == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn round_trip() {
            let (tx, rx) = unbounded();
            tx.send(5u32).unwrap();
            assert_eq!(rx.recv(), Ok(5));
        }

        #[test]
        fn recv_errors_when_senders_gone() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_when_receivers_gone() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        }

        #[test]
        fn try_recv_never_blocks() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(3).unwrap();
            assert_eq!(rx.try_recv(), Ok(3));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_fires_without_traffic() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
        }

        #[test]
        fn cross_thread_delivery() {
            let (tx, rx) = unbounded();
            let t = thread::spawn(move || {
                for i in 0..100u32 {
                    tx.send(i).unwrap();
                }
            });
            let mut got = Vec::new();
            for _ in 0..100 {
                got.push(rx.recv().unwrap());
            }
            t.join().unwrap();
            assert_eq!(got, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn mpmc_consumes_every_message_once() {
            let (tx, rx) = unbounded();
            for i in 0..200u32 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let rx2 = rx.clone();
            let h = thread::spawn(move || {
                let mut v = Vec::new();
                while let Ok(x) = rx2.recv() {
                    v.push(x);
                }
                v
            });
            let mut mine = Vec::new();
            while let Ok(x) = rx.recv() {
                mine.push(x);
            }
            let mut all = h.join().unwrap();
            all.extend(mine);
            all.sort_unstable();
            assert_eq!(all, (0..200).collect::<Vec<_>>());
        }
    }
}
