//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate.
//!
//! Provides `Mutex` and `RwLock` with parking_lot's ergonomic API (no
//! `Result` from `lock`), implemented over `std::sync`. A poisoned std
//! lock (possible only after a panic while holding it) is surfaced by
//! ignoring the poison, matching parking_lot's no-poisoning semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual exclusion primitive; `lock` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock; `read`/`write` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
