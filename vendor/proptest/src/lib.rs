//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this crate implements
//! the subset of the proptest API the workspace's property tests use: the
//! [`proptest!`] macro, range / tuple / [`Just`] / mapped / flat-mapped /
//! boxed strategies, [`collection::vec`], [`sample::Index`],
//! [`sample::select`], `any::<T>()`, and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its seed and case number so
//!   it can be replayed with `PROPTEST_SEED=<seed>`; it is not minimized.
//! * `prop_assert!`/`prop_assert_eq!` panic (like `assert!`) instead of
//!   returning `Err`, which is equivalent for test outcomes.
//! * Default case count is 64, overridable per test via
//!   `ProptestConfig::with_cases` or globally via `PROPTEST_CASES`.

pub mod test_runner {
    /// Per-test configuration (only the fields this workspace uses).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// An explicit test-case failure (the `Err` side of a property body).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure carrying `message`.
        pub fn fail<M: std::fmt::Display>(message: M) -> Self {
            TestCaseError {
                message: message.to_string(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives one property test: owns the RNG every strategy draws from.
    #[derive(Debug)]
    pub struct TestRunner {
        cases: u32,
        seed: u64,
        state: u64,
    }

    impl TestRunner {
        /// A runner seeded from `PROPTEST_SEED` if set, otherwise from
        /// process entropy.
        pub fn new(config: ProptestConfig) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| {
                    use std::hash::{BuildHasher, Hasher};
                    std::collections::hash_map::RandomState::new()
                        .build_hasher()
                        .finish()
                });
            TestRunner {
                cases: config.cases,
                seed,
                state: seed,
            }
        }

        /// How many cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The seed that reproduces this run via `PROPTEST_SEED`.
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// SplitMix64 step: the raw randomness behind every strategy.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `lo..=hi`.
        ///
        /// # Panics
        ///
        /// Panics if `lo > hi`.
        pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo <= hi, "empty range");
            let span = (hi - lo) as u64;
            if span == u64::MAX {
                return self.next_u64() as usize;
            }
            lo + (self.next_u64() % (span + 1)) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRunner;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

        /// Post-processes every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: std::rc::Rc::new(self),
            }
        }
    }

    /// A type-erased [`Strategy`].
    pub struct BoxedStrategy<V> {
        inner: std::rc::Rc<dyn Strategy<Value = V>>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: std::rc::Rc::clone(&self.inner),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, runner: &mut TestRunner) -> V {
            self.inner.new_value(runner)
        }
    }

    /// Always generates a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.new_value(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn new_value(&self, runner: &mut TestRunner) -> S2::Value {
            (self.f)(self.inner.new_value(runner)).new_value(runner)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    runner.usize_inclusive(self.start as usize, (self.end - 1) as usize) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, runner: &mut TestRunner) -> $t {
                    runner.usize_inclusive(*self.start() as usize, *self.end() as usize) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, usize);

    impl Strategy for core::ops::Range<u64> {
        type Value = u64;
        fn new_value(&self, runner: &mut TestRunner) -> u64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + runner.next_u64() % (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<u64> {
        type Value = u64;
        fn new_value(&self, runner: &mut TestRunner) -> u64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            let span = hi - lo;
            if span == u64::MAX {
                return runner.next_u64();
            }
            lo + runner.next_u64() % (span + 1)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.new_value(runner),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
    }

    /// Types with a canonical "generate any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(runner: &mut TestRunner) -> u64 {
            runner.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(runner: &mut TestRunner) -> u32 {
            runner.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(runner: &mut TestRunner) -> usize {
            runner.next_u64() as usize
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> bool {
            runner.next_u64() & 1 == 1
        }
    }

    impl<A: Arbitrary, const N: usize> Arbitrary for [A; N] {
        fn arbitrary(runner: &mut TestRunner) -> [A; N] {
            core::array::from_fn(|_| A::arbitrary(runner))
        }
    }

    /// The `any::<T>()` strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<A>(core::marker::PhantomData<A>);

    /// Generates any value of `A` (via [`Arbitrary`]).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(core::marker::PhantomData)
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn new_value(&self, runner: &mut TestRunner) -> A {
            A::arbitrary(runner)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// An inclusive length range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, runner: &mut TestRunner) -> Vec<S::Value> {
            let len = runner.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::{Arbitrary, Strategy};
    use crate::test_runner::TestRunner;

    /// A length-agnostic index: generated once, projected onto any
    /// collection length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// This index projected onto a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(runner: &mut TestRunner) -> Index {
            Index(runner.next_u64() as usize)
        }
    }

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, runner: &mut TestRunner) -> T {
            self.options[runner.usize_inclusive(0, self.options.len() - 1)].clone()
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror so `prop::sample::Index` etc. resolve.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random strategy draws.
///
/// A failing case prints the runner seed; rerun with `PROPTEST_SEED=<n>`
/// to reproduce it exactly. No shrinking is performed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            let seed = runner.seed();
            let cases = runner.cases();
            for case in 0..cases {
                $(
                    let $arg =
                        $crate::strategy::Strategy::new_value(&($strat), &mut runner);
                )+
                let outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            Ok(())
                        },
                    ),
                );
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(rejection)) => {
                        panic!(
                            "proptest: case {}/{} rejected ({}); reproduce with \
                             PROPTEST_SEED={}",
                            case + 1,
                            cases,
                            rejection,
                            seed
                        );
                    }
                    Err(panic) => {
                        eprintln!(
                            "proptest: case {}/{} failed; reproduce with PROPTEST_SEED={}",
                            case + 1,
                            cases,
                            seed
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..500).prop_map(|x| x * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 2u64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((2..=4).contains(&y));
        }

        #[test]
        fn mapped_strategies_apply(x in arb_even()) {
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn flat_map_dependent_generation(v in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0u32..10, n)
        })) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }

        #[test]
        fn tuples_justs_and_indices(
            (a, b) in (Just(7u32), 0u32..3),
            sel in any::<prop::sample::Index>(),
            arr in any::<[prop::sample::Index; 3]>(),
        ) {
            prop_assert_eq!(a, 7);
            prop_assert!(b < 3);
            prop_assert!(sel.index(5) < 5);
            prop_assert!(arr[2].index(9) < 9);
        }

        #[test]
        fn select_draws_members(x in prop::sample::select(vec![1, 5, 9])) {
            prop_assert!([1, 5, 9].contains(&x));
        }

        #[test]
        fn boxed_strategies_compose(n in (2usize..6).prop_flat_map(|n| {
            if n == 2 {
                Just(2usize).boxed()
            } else {
                (3usize..=n).boxed()
            }
        })) {
            prop_assert!((2..6).contains(&n));
        }
    }
}
