//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this crate re-implements exactly the subset of the `rand` 0.8 API the
//! workspace uses: [`rngs::StdRng`] (a xoshiro256++ generator seeded via
//! SplitMix64), [`rngs::mock::StepRng`], the [`Rng`]/[`SeedableRng`]/
//! [`RngCore`] traits with `gen_range`/`gen_bool`, [`seq::SliceRandom`]'s
//! `shuffle`, and [`distributions::WeightedIndex`].
//!
//! Streams are deterministic per seed (the property every simulation test
//! relies on) but do **not** bit-match the real `rand` crate.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `0.0..=1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool needs p in 0..=1");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that knows how to sample itself uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: expands a 64-bit seed into xoshiro's 256-bit state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Statistically solid, allocation-free, and deterministic per seed.
    /// Not a reimplementation of `rand`'s ChaCha-based `StdRng`; streams
    /// differ from the real crate but are stable across platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Trivial mock generators for tests.
    pub mod mock {
        use super::super::RngCore;

        /// Yields `initial`, `initial + increment`, … — handy for
        /// deterministic structural tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            next: u64,
            increment: u64,
        }

        impl StepRng {
            /// A generator counting from `initial` by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    next: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let value = self.next;
                self.next = self.next.wrapping_add(self.increment);
                value
            }
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// Distribution sampling (the subset the harness uses).
pub mod distributions {
    use super::{unit_f64, RngCore};

    /// A type that can draw values of `T` from an [`RngCore`].
    pub trait Distribution<T> {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Invalid input to [`WeightedIndex::new`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WeightedError;

    impl core::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            write!(f, "weights must be non-negative with a positive sum")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..weights.len()` proportionally to the weights,
    /// via the cumulative-sum inversion method.
    #[derive(Debug, Clone, PartialEq)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler.
        ///
        /// # Errors
        ///
        /// [`WeightedError`] if any weight is negative/non-finite or the
        /// sum is not positive.
        pub fn new(weights: &[f64]) -> Result<Self, WeightedError> {
            let mut cumulative = Vec::with_capacity(weights.len());
            let mut total = 0.0f64;
            for &w in weights {
                if !w.is_finite() || w < 0.0 {
                    return Err(WeightedError);
                }
                total += w;
                cumulative.push(total);
            }
            if total <= 0.0 || total.is_nan() {
                return Err(WeightedError);
            }
            Ok(WeightedIndex { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let x = unit_f64(rng.next_u64()) * self.total;
            // First cumulative weight strictly above x; zero-weight
            // entries (cumulative equal to their predecessor) are skipped.
            match self
                .cumulative
                .binary_search_by(|c| c.partial_cmp(&x).expect("finite weights"))
            {
                Ok(i) => (i + 1).min(self.cumulative.len() - 1),
                Err(i) => i.min(self.cumulative.len() - 1),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5usize..=6);
            assert!(w == 5 || w == 6);
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(7, 13);
        assert_eq!(rng.next_u64(), 7);
        assert_eq!(rng.next_u64(), 20);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffled order");
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = WeightedIndex::new(&[1.0, 0.0, 9.0]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..5000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0, "zero weight never drawn");
        assert!(counts[2] > counts[0] * 5, "9:1 ratio respected: {counts:?}");
    }

    #[test]
    fn weighted_index_rejects_bad_weights() {
        assert!(WeightedIndex::new(&[]).is_err());
        assert!(WeightedIndex::new(&[0.0, 0.0]).is_err());
        assert!(WeightedIndex::new(&[-1.0, 2.0]).is_err());
        assert!(WeightedIndex::new(&[f64::NAN]).is_err());
    }
}
